/**
 * @file
 * Trainable mini point-cloud classifier.
 *
 * A scaled-down PointNet++-style network (one set-abstraction module
 * with a two-layer shared MLP, global max pooling, and a two-layer FC
 * head) that can be trained from scratch under either the original or
 * the delayed-aggregation pipeline. Because the module MLP has two
 * layers, the delayed form is genuinely approximate (paper Eq. 3) —
 * training absorbs the residual, which is exactly the mechanism behind
 * the paper's Fig. 16 accuracy results.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "core/pipeline.hpp"
#include "geom/point_cloud.hpp"
#include "tensor/tensor.hpp"

namespace mesorasi::train {

/** Architecture/optimization hyper-parameters. */
struct MiniNetConfig
{
    int32_t numPoints = 256;  ///< points per input cloud
    int32_t numCentroids = 64;
    int32_t k = 8;
    int32_t hidden1 = 32;     ///< module MLP layer 1
    int32_t hidden2 = 48;     ///< module MLP layer 2 (module output)
    int32_t headHidden = 48;
    int32_t numClasses = 8;
    float lr = 0.02f;
    float weightDecay = 1e-4f;
    int32_t batchSize = 8;

    /**
     * Input normalization for the original pipeline: neighbor offsets
     * (p_j - p_i) live at the neighborhood-radius scale (~0.2 on unit
     * clouds) while the delayed pipeline's raw points are unit scale.
     * Real networks equalize this with batch normalization; the mini
     * net scales offsets by 1/radius instead so both pipelines train at
     * the same effective rate.
     */
    float offsetScale = 5.0f;
};

/** One labelled training example. */
struct Example
{
    geom::PointCloud cloud;
    int32_t label = 0;
};

/** The trainable network. */
class MiniPointNet
{
  public:
    MiniPointNet(const MiniNetConfig &cfg, core::PipelineKind kind,
                 uint64_t seed);

    /** Forward one cloud; returns 1 x numClasses logits. */
    tensor::Tensor forward(const geom::PointCloud &cloud) const;

    /** One epoch of minibatch SGD; returns the mean training loss. */
    double trainEpoch(const std::vector<Example> &examples, Rng &rng);

    /** Classification accuracy on a set of examples. */
    double evaluate(const std::vector<Example> &examples) const;

    core::PipelineKind pipeline() const { return kind_; }
    const MiniNetConfig &config() const { return cfg_; }

  private:
    struct Cache; // forward activations needed by backward

    tensor::Tensor forwardImpl(const geom::PointCloud &cloud,
                               Cache *cache) const;

    /** Accumulate gradients for one example into the grad buffers. */
    double backward(const geom::PointCloud &cloud, int32_t label);

    void applyGrads(float scale);
    void zeroGrads();

    MiniNetConfig cfg_;
    core::PipelineKind kind_;

    // Parameters.
    tensor::Tensor w1_, b1_, w2_, b2_;   // module MLP
    tensor::Tensor wf1_, bf1_, wf2_, bf2_; // head

    // Gradient accumulators.
    tensor::Tensor gw1_, gb1_, gw2_, gb2_;
    tensor::Tensor gwf1_, gbf1_, gwf2_, gbf2_;
};

/** Build a balanced synthetic train/test split from ModelNetSim-style
 *  shape classes. */
std::vector<Example> makeShapeDataset(uint64_t seed, int32_t numClasses,
                                      int32_t perClass, int32_t numPoints);

} // namespace mesorasi::train
