/**
 * @file
 * Tests for the Aggregation Unit cycle simulator: work conservation,
 * bank-conflict behaviour, column-major partitioning, and the NIT
 * re-read energy trade-off (paper Secs. V-B, VII-F).
 */
#include <gtest/gtest.h>

#include "common/check.hpp"

#include "common/rng.hpp"
#include "hwsim/agg_unit.hpp"

namespace mesorasi::hwsim {
namespace {

using neighbor::NeighborIndexTable;
using neighbor::NitEntry;

AggregationUnit
makeAu(AuConfig au = AuConfig{})
{
    return AggregationUnit(au, NpuConfig{}, EnergyConfig{});
}

/** NIT with k *distinct* random neighbors per entry (the AU dedups
 *  duplicate addresses, so distinct indices keep counts predictable). */
NeighborIndexTable
randomNit(int32_t entries, int32_t k, int32_t pftRows, uint64_t seed)
{
    mesorasi::Rng rng(seed);
    NeighborIndexTable nit(k);
    for (int32_t i = 0; i < entries; ++i) {
        NitEntry e;
        e.centroid = static_cast<int32_t>(rng.uniformInt(0, pftRows - 1));
        e.neighbors = rng.sampleWithoutReplacement(pftRows, k);
        nit.add(std::move(e));
    }
    return nit;
}

TEST(Au, ConflictFreeEntriesHitIdealRounds)
{
    // Neighbors 0..31 map to distinct banks (32 banks, LSB interleave):
    // exactly one round per entry.
    NeighborIndexTable nit(32);
    NitEntry e;
    e.centroid = 0;
    for (int32_t i = 0; i < 32; ++i)
        e.neighbors.push_back(i);
    nit.add(e);

    AuStats s = makeAu().aggregate(nit, 64, 32);
    EXPECT_EQ(s.actualRounds, 1);
    EXPECT_EQ(s.idealRounds, 1);
    EXPECT_DOUBLE_EQ(s.conflictFraction, 0.0);
}

TEST(Au, FullConflictSerializes)
{
    // All 8 neighbors in the same bank: 8 rounds instead of 1.
    NeighborIndexTable nit(8);
    NitEntry e;
    e.centroid = 1;
    for (int32_t i = 0; i < 8; ++i)
        e.neighbors.push_back(i * 32); // all row % 32 == 0
    nit.add(e);

    AuStats s = makeAu().aggregate(nit, 512, 16);
    EXPECT_EQ(s.actualRounds, 8);
    EXPECT_EQ(s.idealRounds, 1);
    EXPECT_NEAR(s.conflictFraction, 7.0 / 8.0, 1e-9);
    EXPECT_NEAR(s.slowdownVsIdeal, 8.0, 1e-9);
}

TEST(Au, WordReadsConserveWork)
{
    // Every neighbor row must be read exactly once per partition (plus
    // the centroid row): pftWordReads == (sum K + entries) * partCols
    // per partition pass.
    auto nit = randomNit(64, 16, 1024, 1);
    AuConfig cfg;
    cfg.pftBufferBytes = 64 * 1024;
    int32_t cols = 32; // PFT = 1024*32*4 = 128 KB -> 2 partitions
    AuStats s = makeAu(cfg).aggregate(nit, 1024, cols);
    EXPECT_EQ(s.partitions, 2);
    int64_t part_cols = 16;
    int64_t expected =
        (nit.totalNeighbors() + nit.size()) * part_cols * s.partitions;
    EXPECT_EQ(s.pftWordReads, expected);
}

TEST(Au, PartitionCountMatchesPftSize)
{
    auto nit = randomNit(16, 8, 2048, 2);
    AuConfig cfg;
    cfg.pftBufferBytes = 64 * 1024;
    // 2048 rows x 128 cols x 4 B = 1 MB -> 16 partitions.
    AuStats s = makeAu(cfg).aggregate(nit, 2048, 128);
    EXPECT_EQ(s.partitions, 16);
    // Fill traffic covers the whole PFT exactly once overall.
    EXPECT_EQ(s.pftFillBytes, 2048 * 128 * 4);
}

TEST(Au, SmallPftFitsInOnePartition)
{
    auto nit = randomNit(16, 8, 512, 3);
    AuStats s = makeAu().aggregate(nit, 512, 16); // 32 KB < 64 KB
    EXPECT_EQ(s.partitions, 1);
}

TEST(Au, NitRereadPerPartitionWhenNotResident)
{
    auto nit = randomNit(512, 32, 2048, 4);
    AuConfig cfg;
    cfg.pftBufferBytes = 64 * 1024;
    cfg.nitBufferBytes = 12 * 1024; // NIT (512*(33*12/8)B ~ 25 KB) > 24KB
    AuStats s = makeAu(cfg).aggregate(nit, 2048, 128); // 16 partitions
    EXPECT_EQ(s.nitDramBytes, nit.packedBytes() * 16);

    // With big NIT buffers the table is read once.
    cfg.nitBufferBytes = 96 * 1024;
    AuStats s2 = makeAu(cfg).aggregate(nit, 2048, 128);
    EXPECT_EQ(s2.nitDramBytes, nit.packedBytes());
}

TEST(Au, SmallerPftBufferCostsMoreEnergy)
{
    // Fig. 22's diagonal: shrinking the PFT buffer multiplies NIT
    // re-reads and fill passes.
    auto nit = randomNit(512, 32, 2048, 5);
    AuConfig small;
    small.pftBufferBytes = 8 * 1024;
    AuConfig big;
    big.pftBufferBytes = 256 * 1024;
    AuStats ss = makeAu(small).aggregate(nit, 2048, 128);
    AuStats sb = makeAu(big).aggregate(nit, 2048, 128);
    EXPECT_GT(ss.energyMj + 1e-12, sb.energyMj);
    EXPECT_GT(ss.nitDramBytes, sb.nitDramBytes);
}

TEST(Au, RandomIndicesConflictModerately)
{
    // With 32 banks and K=32 random indices, some conflicts are
    // unavoidable but the slowdown stays low single-digit (the paper
    // measures 1.5x on real NITs).
    auto nit = randomNit(512, 32, 1024, 6);
    AuStats s = makeAu().aggregate(nit, 1024, 128);
    EXPECT_GT(s.slowdownVsIdeal, 1.0);
    EXPECT_LT(s.slowdownVsIdeal, 8.0);
    EXPECT_GT(s.conflictFraction, 0.0);
    EXPECT_LT(s.conflictFraction, 0.9);
}

TEST(Au, MoreBanksReduceCyclesAndRounds)
{
    // More banks strictly reduce the absolute rounds/cycles. (The
    // slowdown *ratio* vs ideal can grow, because the ideal drops to
    // ceil(K/B)=1 faster than the max bank occupancy does — classic
    // balls-in-bins behaviour.)
    auto nit = randomNit(256, 32, 1024, 7);
    AuConfig few;
    few.pftBanks = 8;
    AuConfig many;
    many.pftBanks = 64;
    AuStats sf = makeAu(few).aggregate(nit, 1024, 64);
    AuStats sm = makeAu(many).aggregate(nit, 1024, 64);
    EXPECT_LT(sm.actualRounds, sf.actualRounds);
    EXPECT_LT(sm.cycles, sf.cycles);
}

TEST(Au, DuplicateAddressesDedupedWithinEntry)
{
    // Ball-query padding repeats one neighbor; identical addresses are
    // served by a single bank read (max is idempotent).
    NeighborIndexTable nit(8);
    NitEntry e;
    e.centroid = 0;
    e.neighbors = {5, 5, 5, 5, 5, 5, 5, 5};
    nit.add(e);
    AuStats s = makeAu().aggregate(nit, 64, 16);
    EXPECT_EQ(s.actualRounds, 1);
    EXPECT_EQ(s.idealRounds, 1);
}

TEST(Au, RejectsOutOfRangeNit)
{
    NeighborIndexTable nit(2);
    nit.add({0, {100}});
    EXPECT_THROW(makeAu().aggregate(nit, 50, 16),
                 mesorasi::UsageError);
}

TEST(Au, DeterministicStats)
{
    auto nit = randomNit(64, 16, 512, 8);
    AuStats a = makeAu().aggregate(nit, 512, 64);
    AuStats b = makeAu().aggregate(nit, 512, 64);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_DOUBLE_EQ(a.energyMj, b.energyMj);
}

TEST(Au, MergeAccumulates)
{
    auto nit = randomNit(32, 8, 256, 9);
    AuStats a = makeAu().aggregate(nit, 256, 32);
    AuStats total;
    total.merge(a);
    total.merge(a);
    EXPECT_EQ(total.cycles, 2 * a.cycles);
    EXPECT_EQ(total.pftWordReads, 2 * a.pftWordReads);
    EXPECT_NEAR(total.slowdownVsIdeal, a.slowdownVsIdeal, 1e-9);
}

} // namespace
} // namespace mesorasi::hwsim
