/**
 * @file
 * Tests for the workload analyses behind Figs. 6, 7, 9, 10.
 */
#include <gtest/gtest.h>

#include "common/check.hpp"

#include "core/analysis.hpp"
#include "core/networks.hpp"
#include "geom/datasets.hpp"

namespace mesorasi::core {
namespace {

TEST(Occupancy, CountsMembership)
{
    neighbor::NeighborIndexTable nit(2);
    nit.add({0, {1, 2}});
    nit.add({1, {1, 3}});
    // Point 1 occurs in 2 neighborhoods; points 2 and 3 in 1 each.
    Histogram h = neighborhoodOccupancy({nit});
    EXPECT_EQ(h.count(2), 1u);
    EXPECT_EQ(h.count(1), 2u);
}

TEST(Occupancy, RealNetworkMajorityInManyNeighborhoods)
{
    // Paper Fig. 6: in PointNet++ over half the points occur in dozens
    // of neighborhoods. With K=32 over 1024->512, mean occupancy is
    // 512*32/~1024 = 16 among touched points.
    NetworkConfig cfg = zoo::pointnetppClassification();
    NetworkExecutor exec(cfg, 1);
    geom::ModelNetSim sim(3, cfg.numInputPoints);
    RunResult r = exec.run(sim.sample(2).cloud, PipelineKind::Delayed, 5);
    Histogram h = neighborhoodOccupancy({r.nits[0]});
    EXPECT_GT(h.keyMean(), 4.0);
    EXPECT_GT(h.keyPercentile(0.9), h.keyPercentile(0.5));
}

TEST(MacReduction, PositiveForPointnetpp)
{
    NetworkConfig cfg = zoo::pointnetppClassification();
    NetworkExecutor exec(cfg, 1);
    auto orig = exec.analyticTrace(PipelineKind::Original, 1024);
    auto del = exec.analyticTrace(PipelineKind::Delayed, 1024);
    double red = macReduction(orig, del);
    EXPECT_GT(red, 0.5);
    EXPECT_LT(red, 1.0);
}

TEST(MacReduction, AcrossZooAveragesNearPaper)
{
    // Paper Fig. 9: average MLP MAC reduction ~68% across the five
    // characterized networks; ours should land in the same regime.
    double total = 0.0;
    auto nets = zoo::characterizationNetworks();
    for (const auto &cfg : nets) {
        NetworkExecutor exec(cfg, 1);
        auto orig =
            exec.analyticTrace(PipelineKind::Original, cfg.numInputPoints);
        auto del =
            exec.analyticTrace(PipelineKind::Delayed, cfg.numInputPoints);
        total += macReduction(orig, del);
    }
    double avg = total / nets.size();
    EXPECT_GT(avg, 0.5);
    EXPECT_LT(avg, 0.99);
}

TEST(LayerSizes, DelayedShrinksActivations)
{
    NetworkConfig cfg = zoo::pointnetppSegmentation();
    NetworkExecutor exec(cfg, 1);
    auto orig = exec.analyticTrace(PipelineKind::Original,
                                   cfg.numInputPoints);
    auto del = exec.analyticTrace(PipelineKind::Delayed,
                                  cfg.numInputPoints);
    auto so = layerOutputSizes(orig);
    auto sd = layerOutputSizes(del);
    int64_t max_o = *std::max_element(so.begin(), so.end());
    int64_t max_d = *std::max_element(sd.begin(), sd.end());
    // Paper Fig. 10: 8-32 MB down to 512 KB - 1 MB.
    EXPECT_GT(max_o, 4 * max_d);
}

TEST(CnnMacs, ScalesWithPixels)
{
    int64_t base = cnnMacs("resnet50", 224 * 224);
    EXPECT_NEAR(static_cast<double>(base), 4.1e9, 1e8);
    EXPECT_EQ(cnnMacs("resnet50", 2 * 224 * 224), 2 * base);
    EXPECT_THROW(cnnMacs("vgg", 100), mesorasi::UsageError);
}

TEST(CnnMacs, PointCloudNetworksExceedCnnsAt130k)
{
    // Paper Fig. 7: at ~130k points, point-cloud feature computation
    // has an order of magnitude more MACs than CNNs on equal pixels.
    const int64_t pts = 130'000;
    NetworkConfig cfg = zoo::pointnetppClassification();
    NetworkExecutor exec(cfg, 1);
    auto orig = exec.analyticTrace(PipelineKind::Original,
                                   static_cast<int32_t>(pts));
    EXPECT_GT(featureMacs(orig), cnnMacs("resnet50", pts));
}

} // namespace
} // namespace mesorasi::core
