/**
 * @file
 * Tests for approximate aggregation (the Sec. V-B future-work feature):
 * the AU round cap and its functional counterpart applyRoundCap.
 */
#include <gtest/gtest.h>

#include "common/check.hpp"

#include <algorithm>
#include <set>

#include "common/rng.hpp"
#include "hwsim/agg_unit.hpp"

namespace mesorasi::hwsim {
namespace {

using neighbor::NeighborIndexTable;
using neighbor::NitEntry;

NeighborIndexTable
clusteredNit(int32_t entries, int32_t k, int32_t pftRows, uint64_t seed)
{
    // Neighbors clustered into few banks to force conflicts.
    mesorasi::Rng rng(seed);
    NeighborIndexTable nit(k);
    for (int32_t i = 0; i < entries; ++i) {
        NitEntry e;
        e.centroid = static_cast<int32_t>(rng.uniformInt(0, pftRows - 1));
        int32_t base = static_cast<int32_t>(
            rng.uniformInt(0, pftRows / 32 - k - 1));
        for (int32_t j = 0; j < k; ++j)
            e.neighbors.push_back((base + j) * 32 % pftRows); // 1 bank
        nit.add(std::move(e));
    }
    return nit;
}

TEST(RoundCap, SubsetOfOriginal)
{
    auto nit = clusteredNit(16, 8, 1024, 1);
    auto capped = applyRoundCap(nit, 32, 2);
    ASSERT_EQ(capped.size(), nit.size());
    for (int32_t i = 0; i < nit.size(); ++i) {
        std::set<int32_t> orig(nit[i].neighbors.begin(),
                               nit[i].neighbors.end());
        for (int32_t n : capped[i].neighbors)
            EXPECT_TRUE(orig.count(n) || n == capped[i].centroid);
        EXPECT_EQ(capped[i].centroid, nit[i].centroid);
    }
}

TEST(RoundCap, BankOccupancyRespectsCap)
{
    auto nit = clusteredNit(16, 8, 1024, 2);
    for (int32_t cap : {1, 2, 4}) {
        auto capped = applyRoundCap(nit, 32, cap);
        for (const auto &e : capped.entries()) {
            std::vector<int32_t> bank(32, 0);
            std::set<int32_t> seen;
            for (int32_t n : e.neighbors) {
                if (!seen.insert(n).second)
                    continue;
                ++bank[n % 32];
            }
            EXPECT_LE(*std::max_element(bank.begin(), bank.end()), cap);
        }
    }
}

TEST(RoundCap, NoEntryLeftEmpty)
{
    auto nit = clusteredNit(8, 8, 1024, 3);
    auto capped = applyRoundCap(nit, 32, 1);
    for (const auto &e : capped.entries())
        EXPECT_FALSE(e.neighbors.empty());
}

TEST(RoundCap, UnboundedCapKeepsUniqueNeighbors)
{
    auto nit = clusteredNit(8, 8, 1024, 4);
    auto capped = applyRoundCap(nit, 32, 1000);
    for (int32_t i = 0; i < nit.size(); ++i) {
        std::set<int32_t> orig(nit[i].neighbors.begin(),
                               nit[i].neighbors.end());
        std::set<int32_t> got(capped[i].neighbors.begin(),
                              capped[i].neighbors.end());
        EXPECT_EQ(orig, got);
    }
}

TEST(AuApprox, CapReducesCyclesOnConflictedNits)
{
    auto nit = clusteredNit(64, 8, 1024, 5);
    AuConfig exact_cfg;
    AuConfig capped_cfg;
    capped_cfg.maxRoundsPerEntry = 2;
    AggregationUnit exact(exact_cfg, NpuConfig{}, EnergyConfig{});
    AggregationUnit capped(capped_cfg, NpuConfig{}, EnergyConfig{});
    AuStats se = exact.aggregate(nit, 1024, 64);
    AuStats sc = capped.aggregate(nit, 1024, 64);
    EXPECT_LT(sc.cycles, se.cycles);
    EXPECT_GT(sc.droppedNeighbors, 0);
    EXPECT_EQ(se.droppedNeighbors, 0);
    EXPECT_EQ(sc.totalNeighbors, se.totalNeighbors);
    EXPECT_LT(sc.droppedNeighbors, sc.totalNeighbors);
}

TEST(AuApprox, ZeroCapMeansExact)
{
    auto nit = clusteredNit(16, 8, 1024, 6);
    AuConfig cfg;
    cfg.maxRoundsPerEntry = 0;
    AggregationUnit au(cfg, NpuConfig{}, EnergyConfig{});
    AuStats s = au.aggregate(nit, 1024, 64);
    EXPECT_EQ(s.droppedNeighbors, 0);
}

TEST(AuApprox, GenerousCapDropsNothing)
{
    auto nit = clusteredNit(16, 8, 1024, 7);
    AuConfig cfg;
    cfg.maxRoundsPerEntry = 64;
    AggregationUnit au(cfg, NpuConfig{}, EnergyConfig{});
    AuStats s = au.aggregate(nit, 1024, 64);
    EXPECT_EQ(s.droppedNeighbors, 0);
}

TEST(AuApprox, DroppedFractionGrowsAsCapShrinks)
{
    auto nit = clusteredNit(64, 8, 1024, 8);
    int64_t prev_dropped = -1;
    for (int32_t cap : {4, 2, 1}) {
        AuConfig cfg;
        cfg.maxRoundsPerEntry = cap;
        AggregationUnit au(cfg, NpuConfig{}, EnergyConfig{});
        AuStats s = au.aggregate(nit, 1024, 64);
        EXPECT_GE(s.droppedNeighbors, prev_dropped);
        prev_dropped = s.droppedNeighbors;
    }
}

} // namespace
} // namespace mesorasi::hwsim
