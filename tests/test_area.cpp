/**
 * @file
 * Tests for the 16 nm area model against the paper's Sec. VII-A
 * numbers.
 */
#include <gtest/gtest.h>

#include "hwsim/area.hpp"

namespace mesorasi::hwsim {
namespace {

TEST(Area, AuTotalNearPaper)
{
    AreaModel model(SocConfig::defaultTx2());
    AuArea a = model.aggregationUnit();
    // Paper: 0.059 mm^2 total AU overhead.
    EXPECT_GT(a.total, 0.03);
    EXPECT_LT(a.total, 0.12);
}

TEST(Area, PftBufferNearPaper)
{
    AreaModel model(SocConfig::defaultTx2());
    AuArea a = model.aggregationUnit();
    // Paper: PFT buffer 0.031 mm^2.
    EXPECT_GT(a.pftBuffer, 0.015);
    EXPECT_LT(a.pftBuffer, 0.06);
}

TEST(Area, AvoidedCrossbarMatchesPaper)
{
    AreaModel model(SocConfig::defaultTx2());
    AuArea a = model.aggregationUnit();
    // Paper: the avoided 32x32 crossbar would cost 0.064 mm^2 — more
    // than the PFT buffer itself.
    EXPECT_NEAR(a.avoidedCrossbar, 0.064, 1e-6);
    EXPECT_GT(a.avoidedCrossbar, a.pftBuffer);
}

TEST(Area, OverheadUnderFourPercentOfNpu)
{
    AreaModel model(SocConfig::defaultTx2());
    AuArea a = model.aggregationUnit();
    double npu = model.npuMm2();
    EXPECT_LT(a.total / npu, 0.06);
    EXPECT_GT(a.total / npu, 0.01);
}

TEST(Area, SramAreaScalesWithSize)
{
    AreaModel model(SocConfig::defaultTx2());
    double small = model.sramMm2(8 * 1024, 1);
    double big = model.sramMm2(64 * 1024, 1);
    EXPECT_GT(big, 4.0 * small);
}

TEST(Area, HeavierBankingCostsMore)
{
    AreaModel model(SocConfig::defaultTx2());
    EXPECT_GT(model.sramMm2(64 * 1024, 32),
              model.sramMm2(64 * 1024, 1));
}

TEST(Area, CrossbarQuadraticInPorts)
{
    AreaModel model(SocConfig::defaultTx2());
    EXPECT_NEAR(model.crossbarMm2(64, 64),
                4.0 * model.crossbarMm2(32, 32), 1e-9);
}

TEST(Area, LargerPftBufferGrowsArea)
{
    // Fig. 22 discussion: a 256 KB PFT buffer costs ~4x the area.
    SocConfig big = SocConfig::defaultTx2();
    big.au.pftBufferBytes = 256 * 1024;
    AreaModel nominal(SocConfig::defaultTx2());
    AreaModel grown(big);
    EXPECT_GT(grown.aggregationUnit().pftBuffer,
              3.0 * nominal.aggregationUnit().pftBuffer);
}

} // namespace
} // namespace mesorasi::hwsim
