/**
 * @file
 * Tests for the batched execution engine: a parallel batch must be
 * bitwise identical to the sequential run of the same seeds, and the
 * aggregated statistics must describe the batch faithfully.
 */
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/batch_runner.hpp"
#include "geom/datasets.hpp"

namespace mesorasi::core {
namespace {

NetworkConfig
smallNetwork()
{
    NetworkConfig cfg;
    cfg.name = "tiny-pnpp";
    cfg.task = Task::Classification;
    cfg.numInputPoints = 256;
    cfg.numClasses = 10;

    ModuleConfig sa1;
    sa1.name = "sa1";
    sa1.numCentroids = 128;
    sa1.k = 16;
    sa1.search = SearchKind::Ball;
    sa1.radius = 0.25f;
    sa1.mlpWidths = {16, 32};
    cfg.modules.push_back(sa1);

    ModuleConfig sa2;
    sa2.name = "sa2";
    sa2.numCentroids = 32;
    sa2.k = 8;
    sa2.search = SearchKind::Knn;
    sa2.mlpWidths = {32, 64};
    cfg.modules.push_back(sa2);

    ModuleConfig global;
    global.name = "global";
    global.search = SearchKind::Global;
    global.mlpWidths = {64};
    cfg.modules.push_back(global);

    cfg.headWidths = {32};
    return cfg;
}

std::vector<geom::PointCloud>
someClouds(int32_t count, int32_t numPoints)
{
    geom::ModelNetSim sim(33, numPoints);
    std::vector<geom::PointCloud> clouds;
    for (int32_t i = 0; i < count; ++i)
        clouds.push_back(sim.sample().cloud);
    return clouds;
}

TEST(BatchRunner, ParallelMatchesSequentialBitwise)
{
    NetworkExecutor exec(smallNetwork(), /*weightSeed=*/1);
    auto clouds = someClouds(6, 256);

    BatchRunner sequential(exec, /*numThreads=*/1);
    BatchRunner parallel(exec, /*numThreads=*/4);
    BatchResult a =
        sequential.run(clouds, PipelineKind::Delayed, /*seedBase=*/7);
    BatchResult b =
        parallel.run(clouds, PipelineKind::Delayed, /*seedBase=*/7);

    ASSERT_EQ(a.items.size(), b.items.size());
    for (size_t i = 0; i < a.items.size(); ++i) {
        EXPECT_EQ(a.items[i].run.logits.maxAbsDiff(
                      b.items[i].run.logits),
                  0.0f)
            << "cloud " << i;
        EXPECT_EQ(a.items[i].predicted, b.items[i].predicted);
    }
    EXPECT_EQ(predictionAgreement(a, b), 1.0);
}

TEST(BatchRunner, RerunWithSameSeedIsIdentical)
{
    NetworkExecutor exec(smallNetwork(), 1);
    auto clouds = someClouds(4, 256);
    BatchRunner runner(exec, 2);
    BatchResult a = runner.run(clouds, PipelineKind::Original, 11);
    BatchResult b = runner.run(clouds, PipelineKind::Original, 11);
    for (size_t i = 0; i < a.items.size(); ++i)
        EXPECT_EQ(
            a.items[i].run.logits.maxAbsDiff(b.items[i].run.logits),
            0.0f);
}

TEST(BatchRunner, StatsDescribeTheBatch)
{
    NetworkExecutor exec(smallNetwork(), 1);
    auto clouds = someClouds(5, 256);
    BatchRunner runner(exec, 0); // global pool
    BatchResult r = runner.run(clouds, PipelineKind::Delayed, 3);

    EXPECT_EQ(r.items.size(), 5u);
    EXPECT_EQ(r.latency.count, 5u);
    EXPECT_GT(r.latency.median, 0.0);
    EXPECT_GE(r.p90LatencyMs, r.latency.median);
    EXPECT_GT(r.wallMs, 0.0);
    EXPECT_GT(r.throughput(), 0.0);
    for (const auto &item : r.items) {
        EXPECT_GE(item.predicted, 0);
        EXPECT_LT(item.predicted, 10);
        EXPECT_GT(item.latencyMs, 0.0);
    }
}

TEST(BatchRunner, EmptyBatchIsWellFormed)
{
    NetworkExecutor exec(smallNetwork(), 1);
    BatchRunner runner(exec, 2);
    BatchResult r = runner.run({}, PipelineKind::Delayed, 1);
    EXPECT_TRUE(r.items.empty());
    EXPECT_EQ(r.latency.count, 0u);
    EXPECT_EQ(r.throughput(), 0.0);
    EXPECT_EQ(predictionAgreement(r, r), 1.0);
}

TEST(BatchRunner, AgreementIsAWellFormedFraction)
{
    // Across pipelines the delayed approximation may flip the argmax of
    // an *untrained* random net, so only the statistic's contract is
    // asserted here: self-agreement is exactly 1, cross-pipeline
    // agreement is a valid fraction, and mismatched batches throw.
    NetworkExecutor exec(smallNetwork(), 1);
    auto clouds = someClouds(4, 256);
    BatchRunner runner(exec, 0);
    BatchResult orig = runner.run(clouds, PipelineKind::Original, 5);
    BatchResult delayed = runner.run(clouds, PipelineKind::Delayed, 5);
    EXPECT_EQ(predictionAgreement(orig, orig), 1.0);
    double x = predictionAgreement(orig, delayed);
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 1.0);
    BatchResult shorter = runner.run(
        {clouds.begin(), clouds.begin() + 2}, PipelineKind::Original, 5);
    EXPECT_THROW(predictionAgreement(orig, shorter),
                 mesorasi::UsageError);
}

} // namespace
} // namespace mesorasi::core
