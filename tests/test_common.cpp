/**
 * @file
 * Unit tests for the common substrate: checks, RNG, statistics, tables,
 * and the thread pool.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <sstream>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"

namespace mesorasi {
namespace {

TEST(Check, CheckThrowsInternalError)
{
    EXPECT_THROW(MESO_CHECK(false, "boom"), InternalError);
}

TEST(Check, RequireThrowsUsageError)
{
    EXPECT_THROW(MESO_REQUIRE(false, "bad input"), UsageError);
}

TEST(Check, PassingConditionsDoNotThrow)
{
    EXPECT_NO_THROW(MESO_CHECK(1 + 1 == 2));
    EXPECT_NO_THROW(MESO_REQUIRE(true));
}

TEST(Check, MessageContainsContext)
{
    try {
        MESO_REQUIRE(false, "value=" << 42);
        FAIL() << "should have thrown";
    } catch (const UsageError &e) {
        EXPECT_NE(std::string(e.what()).find("value=42"),
                  std::string::npos);
    }
}

TEST(Rng, DeterministicGivenSeed)
{
    Rng a(7), b(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.uniformInt(0, 1000000), b.uniformInt(0, 1000000));
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.uniformInt(0, 1000000) == b.uniformInt(0, 1000000))
            ++same;
    EXPECT_LT(same, 5);
}

TEST(Rng, UniformInRange)
{
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        float v = rng.uniform(-2.0f, 5.0f);
        EXPECT_GE(v, -2.0f);
        EXPECT_LT(v, 5.0f);
    }
}

TEST(Rng, UniformIntInclusiveBounds)
{
    Rng rng(4);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        int64_t v = rng.uniformInt(0, 3);
        EXPECT_GE(v, 0);
        EXPECT_LE(v, 3);
        saw_lo |= v == 0;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(5);
    double sum = 0.0, sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        double v = rng.gaussian(1.0f, 2.0f);
        sum += v;
        sq += v * v;
    }
    double mean = sum / n;
    double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 1.0, 0.1);
    EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Rng, SampleWithoutReplacementDistinct)
{
    Rng rng(6);
    auto idx = rng.sampleWithoutReplacement(100, 50);
    std::set<int32_t> s(idx.begin(), idx.end());
    EXPECT_EQ(s.size(), 50u);
    for (int32_t i : idx) {
        EXPECT_GE(i, 0);
        EXPECT_LT(i, 100);
    }
}

TEST(Rng, SampleWithoutReplacementFullSet)
{
    Rng rng(6);
    auto idx = rng.sampleWithoutReplacement(10, 10);
    std::set<int32_t> s(idx.begin(), idx.end());
    EXPECT_EQ(s.size(), 10u);
}

TEST(Rng, SampleWithoutReplacementRejectsOverdraw)
{
    Rng rng(6);
    EXPECT_THROW(rng.sampleWithoutReplacement(5, 6), UsageError);
}

TEST(Rng, ShufflePreservesElements)
{
    Rng rng(8);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
    auto orig = v;
    rng.shuffle(v);
    std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
    EXPECT_EQ(a, b);
}

TEST(Rng, ForkIsIndependent)
{
    Rng a(9);
    Rng child = a.fork();
    // The fork must not replay the parent's stream.
    Rng b(9);
    b.fork();
    EXPECT_EQ(a.uniformInt(0, 1 << 30), b.uniformInt(0, 1 << 30));
    (void)child;
}

TEST(Stats, SummaryBasics)
{
    Summary s = summarize({1.0, 2.0, 3.0, 4.0});
    EXPECT_EQ(s.count, 4u);
    EXPECT_DOUBLE_EQ(s.min, 1.0);
    EXPECT_DOUBLE_EQ(s.max, 4.0);
    EXPECT_DOUBLE_EQ(s.mean, 2.5);
    EXPECT_DOUBLE_EQ(s.median, 2.5);
}

TEST(Stats, SummaryEmpty)
{
    Summary s = summarize({});
    EXPECT_EQ(s.count, 0u);
    EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Stats, SummarySingleton)
{
    Summary s = summarize({42.0});
    EXPECT_DOUBLE_EQ(s.min, 42.0);
    EXPECT_DOUBLE_EQ(s.max, 42.0);
    EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Stats, GeomeanMatchesHand)
{
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-9);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-9);
}

TEST(Stats, GeomeanRejectsNonPositive)
{
    EXPECT_THROW(geomean({1.0, 0.0}), UsageError);
    EXPECT_THROW(geomean({}), UsageError);
}

TEST(Stats, PercentileInterpolates)
{
    std::vector<double> xs{0.0, 10.0};
    EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 5.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 10.0);
}

TEST(Stats, HistogramCountsAndTotal)
{
    Histogram h;
    h.add(3);
    h.add(3);
    h.add(7);
    EXPECT_EQ(h.count(3), 2u);
    EXPECT_EQ(h.count(7), 1u);
    EXPECT_EQ(h.count(99), 0u);
    EXPECT_EQ(h.total(), 3u);
}

TEST(Stats, HistogramWeightedMean)
{
    Histogram h;
    h.add(2, 3); // three observations of key 2
    h.add(8, 1);
    EXPECT_DOUBLE_EQ(h.keyMean(), (2.0 * 3 + 8.0) / 4.0);
}

TEST(Stats, HistogramPercentileKey)
{
    Histogram h;
    for (int i = 0; i < 90; ++i)
        h.add(1);
    for (int i = 0; i < 10; ++i)
        h.add(100);
    EXPECT_EQ(h.keyPercentile(0.5), 1);
    EXPECT_EQ(h.keyPercentile(0.99), 100);
}

TEST(Table, PrintsAllRowsAndHeaders)
{
    Table t("My Table", {"a", "bb"});
    t.addRow({"1", "2"});
    t.addRow({"333", "4"});
    std::ostringstream os;
    t.print(os);
    std::string s = os.str();
    EXPECT_NE(s.find("My Table"), std::string::npos);
    EXPECT_NE(s.find("333"), std::string::npos);
    EXPECT_NE(s.find("bb"), std::string::npos);
    EXPECT_EQ(t.numRows(), 2u);
}

TEST(Table, RejectsRaggedRow)
{
    Table t("t", {"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), UsageError);
}

TEST(Table, Formatters)
{
    EXPECT_EQ(fmt(1.2345, 2), "1.23");
    EXPECT_EQ(fmtX(1.6, 1), "1.6x");
    EXPECT_EQ(fmtPct(0.511, 1), "51.1%");
    EXPECT_EQ(fmtBytes(2048.0), "2.00 KB");
    EXPECT_EQ(fmtCount(1500.0), "1.50K");
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(1000);
    for (auto &h : hits)
        h.store(0); // C++17: atomic default-init is indeterminate
    pool.parallelFor(1000, [&](int64_t b, int64_t e) {
        for (int64_t i = b; i < e; ++i)
            hits[i].fetch_add(1);
    });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, RespectsGrainAndEmptyRange)
{
    ThreadPool pool(4);
    std::atomic<int64_t> sum{0};
    pool.parallelFor(100, /*grain=*/1000, [&](int64_t b, int64_t e) {
        // Range smaller than the grain runs as one inline chunk.
        EXPECT_EQ(b, 0);
        EXPECT_EQ(e, 100);
        sum.fetch_add(e - b);
    });
    EXPECT_EQ(sum.load(), 100);
    pool.parallelFor(0, [&](int64_t, int64_t) { FAIL(); });
}

TEST(ThreadPool, PropagatesFirstException)
{
    ThreadPool pool(4);
    EXPECT_THROW(pool.parallelFor(64,
                                  [&](int64_t b, int64_t) {
                                      if (b >= 0)
                                          MESO_REQUIRE(false, "inner");
                                  }),
                 UsageError);
}

TEST(ThreadPool, NestedParallelForRunsInline)
{
    ThreadPool pool(2);
    std::atomic<int64_t> total{0};
    // Inner loops issued from pool workers must run inline (no
    // deadlock, full coverage).
    pool.parallelFor(8, [&](int64_t b, int64_t e) {
        for (int64_t i = b; i < e; ++i) {
            ThreadPool::global().parallelFor(
                10, [&](int64_t ib, int64_t ie) {
                    EXPECT_TRUE(ThreadPool::insideWorker() ||
                                ThreadPool::global().size() == 1);
                    total.fetch_add(ie - ib);
                });
        }
    });
    EXPECT_EQ(total.load(), 80);
}

TEST(ThreadPool, SingleThreadPoolRunsInline)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.size(), 1);
    int64_t sum = 0; // no atomics needed: everything is inline
    pool.parallelFor(100, [&](int64_t b, int64_t e) {
        for (int64_t i = b; i < e; ++i)
            sum += i;
    });
    EXPECT_EQ(sum, 4950);
}

} // namespace
} // namespace mesorasi
