/**
 * @file
 * Tests for the synthetic dataset simulators (ModelNet/ShapeNet/KITTI
 * stand-ins).
 */
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/check.hpp"
#include "geom/datasets.hpp"

namespace mesorasi::geom {
namespace {

TEST(ModelNetSim, ProducesRequestedPointCount)
{
    ModelNetSim sim(1, 1024);
    for (int32_t c : {0, 7, 19, 39}) {
        auto s = sim.sample(c);
        EXPECT_EQ(s.cloud.size(), 1024u);
        EXPECT_EQ(s.classId, c);
    }
}

TEST(ModelNetSim, AllFortyClassesGenerate)
{
    ModelNetSim sim(2, 256);
    for (int32_t c = 0; c < ModelNetSim::kNumClasses; ++c) {
        auto s = sim.sample(c);
        EXPECT_EQ(s.cloud.size(), 256u) << "class " << c;
        EXPECT_FALSE(ModelNetSim::className(c).empty());
    }
}

TEST(ModelNetSim, NormalizedToUnitSphere)
{
    ModelNetSim sim(3, 512);
    auto s = sim.sample(17);
    float max_norm = 0.0f;
    for (size_t i = 0; i < s.cloud.size(); ++i)
        max_norm = std::max(max_norm, s.cloud[i].norm());
    EXPECT_NEAR(max_norm, 1.0f, 1e-4f);
}

TEST(ModelNetSim, DeterministicGivenSeed)
{
    ModelNetSim a(7, 128), b(7, 128);
    auto sa = a.sample(5);
    auto sb = b.sample(5);
    ASSERT_EQ(sa.cloud.size(), sb.cloud.size());
    for (size_t i = 0; i < sa.cloud.size(); ++i)
        EXPECT_EQ(sa.cloud[i], sb.cloud[i]);
}

TEST(ModelNetSim, InstancesVary)
{
    ModelNetSim sim(8, 128);
    auto a = sim.sample(12);
    auto b = sim.sample(12);
    int differing = 0;
    for (size_t i = 0; i < a.cloud.size(); ++i)
        if (!(a.cloud[i] == b.cloud[i]))
            ++differing;
    EXPECT_GT(differing, 100);
}

TEST(ModelNetSim, BatchBalancesClasses)
{
    ModelNetSim sim(9, 64);
    auto batch = sim.batch(80);
    ASSERT_EQ(batch.size(), 80u);
    std::set<int32_t> classes;
    for (const auto &s : batch)
        classes.insert(s.classId);
    EXPECT_EQ(classes.size(), 40u);
}

TEST(ModelNetSim, RejectsBadClass)
{
    ModelNetSim sim(1, 64);
    EXPECT_THROW(sim.sample(40), mesorasi::UsageError);
    EXPECT_THROW(sim.sample(-1), mesorasi::UsageError);
}

TEST(ShapeNetSim, LabelsAreValidParts)
{
    ShapeNetSim sim(4, 2048);
    for (int32_t cat = 0; cat < ShapeNetSim::kNumCategories; ++cat) {
        auto s = sim.sample(cat);
        EXPECT_EQ(s.cloud.size(), 2048u);
        ASSERT_TRUE(s.cloud.hasLabels());
        int32_t parts = ShapeNetSim::numParts(cat);
        EXPECT_EQ(s.numParts, parts);
        for (int32_t l : s.cloud.labels()) {
            EXPECT_GE(l, 0);
            EXPECT_LT(l, parts);
        }
    }
}

TEST(ShapeNetSim, MultiplePartsPresent)
{
    ShapeNetSim sim(5, 2048);
    auto s = sim.sample(0);
    std::set<int32_t> parts(s.cloud.labels().begin(),
                            s.cloud.labels().end());
    EXPECT_GE(parts.size(), 2u);
}

TEST(KittiSim, FrameHasGroundAndObjects)
{
    KittiSim sim(10);
    LidarFrame f = sim.frame(4, 2, 1);
    EXPECT_EQ(f.objects.size(), 7u);
    EXPECT_GT(f.cloud.size(), 10000u); // a 64-beam scan is dense
    ASSERT_TRUE(f.cloud.hasLabels());
    std::set<int32_t> labels(f.cloud.labels().begin(),
                             f.cloud.labels().end());
    EXPECT_TRUE(labels.count(0)); // ground
    int object_hits = 0;
    for (int32_t l : f.cloud.labels())
        if (l > 0)
            ++object_hits;
    EXPECT_GT(object_hits, 50);
}

TEST(KittiSim, PointsWithinRange)
{
    KittiSim sim(11);
    LidarFrame f = sim.frame(2, 1, 0);
    for (size_t i = 0; i < f.cloud.size(); ++i) {
        EXPECT_LE(f.cloud[i].norm(),
                  sim.lidar().maxRange + 1.0f);
    }
}

TEST(KittiSim, DensityFallsWithDistance)
{
    KittiSim sim(12);
    LidarFrame f = sim.frame(0, 0, 0); // ground only
    int near = 0, far = 0;
    for (size_t i = 0; i < f.cloud.size(); ++i) {
        float r = f.cloud[i].norm();
        if (r < 10.0f)
            ++near;
        else if (r > 30.0f)
            ++far;
    }
    EXPECT_GT(near, far);
}

TEST(KittiSim, ObjectPointsNearTheirBox)
{
    KittiSim sim(13);
    LidarFrame f = sim.frame(3, 0, 0);
    for (size_t i = 0; i < f.cloud.size(); ++i) {
        int32_t l = f.cloud.labels()[i];
        if (l <= 0)
            continue;
        const SceneObject &obj = f.objects[l - 1];
        float d = f.cloud[i].dist(obj.center);
        float diag = obj.size.norm() / 2.0f;
        EXPECT_LE(d, diag + 0.5f)
            << "object point far from its ground-truth box";
    }
}

TEST(KittiSim, FrustumsHaveExactSizeAndForeground)
{
    KittiSim sim(14);
    LidarFrame f = sim.frame(4, 2, 1);
    auto frustums = sim.frustums(f, 1024);
    EXPECT_GT(frustums.size(), 0u);
    for (const auto &fr : frustums) {
        EXPECT_EQ(fr.size(), 1024u);
        ASSERT_TRUE(fr.hasLabels());
        for (int32_t l : fr.labels())
            EXPECT_TRUE(l == 0 || l == 1);
    }
    // At least one frustum should contain foreground points.
    bool any_fg = false;
    for (const auto &fr : frustums)
        for (int32_t l : fr.labels())
            any_fg |= l == 1;
    EXPECT_TRUE(any_fg);
}

TEST(KittiSim, DeterministicGivenSeed)
{
    KittiSim a(20), b(20);
    LidarFrame fa = a.frame(2, 1, 1);
    LidarFrame fb = b.frame(2, 1, 1);
    ASSERT_EQ(fa.cloud.size(), fb.cloud.size());
    for (size_t i = 0; i < std::min<size_t>(fa.cloud.size(), 500); ++i)
        EXPECT_EQ(fa.cloud[i], fb.cloud[i]);
}

} // namespace
} // namespace mesorasi::geom
