/**
 * @file
 * Engine artifact serialization tests:
 *
 *  1. Round-trip bitwise parity: a saved-then-loaded engine's logits
 *     equal the freshly compiled engine's and the per-run stage-graph
 *     path bit for bit — across 3 pipelines x 3 neighbor backends,
 *     with the optimizer pass pipeline on AND off, and over the
 *     concat-head / interp-decoder / detection network shapes.
 *  2. Determinism of the bytes themselves: re-serializing yields the
 *     identical artifact, and serializedEngineSize matches it.
 *  3. Concurrency: several ExecutionContexts execute one loaded
 *     CompiledEngine from parallel threads with bitwise-deterministic
 *     results.
 *  4. Robustness: truncated, bit-flipped, magic- and version-mangled
 *     artifacts either throw UsageError/InternalError with a clear
 *     message or (for flips that keep the artifact well-formed) load
 *     an engine without being executed — never UB. The CI sanitize
 *     job runs this suite under ASan/UBSan, which is what turns
 *     "never UB" from a comment into a checked property.
 *
 * Every compile pins PassOptions::Enable explicitly so the suite is
 * green regardless of MESORASI_PLAN_PASSES.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "core/networks.hpp"
#include "core/plan/plan_compiler.hpp"
#include "core/plan/serialize.hpp"
#include "core/plan/step_ir.hpp"
#include "geom/datasets.hpp"
#include "quant/calibrate.hpp"

namespace mesorasi::core::plan {
namespace {

using geom::PointCloud;
using tensor::Tensor;

// --- Miniature networks (as in test_plan.cpp) -------------------------

ModuleConfig
miniSa(const std::string &name, int32_t centroids, int32_t k,
       float radius, std::vector<int32_t> widths)
{
    ModuleConfig m;
    m.name = name;
    m.numCentroids = centroids;
    m.k = k;
    m.search = SearchKind::Ball;
    m.sampling = SamplingKind::Random;
    m.radius = radius;
    m.mlpWidths = std::move(widths);
    return m;
}

ModuleConfig
miniKnn(const std::string &name, int32_t centroids, int32_t k,
        std::vector<int32_t> widths)
{
    ModuleConfig m = miniSa(name, centroids, k, 0.2f, std::move(widths));
    m.search = SearchKind::Knn;
    return m;
}

ModuleConfig
miniGlobal(const std::string &name, std::vector<int32_t> widths)
{
    ModuleConfig m;
    m.name = name;
    m.search = SearchKind::Global;
    m.mlpWidths = std::move(widths);
    return m;
}

ModuleConfig
miniEdge(const std::string &name, int32_t k, int32_t width)
{
    ModuleConfig m;
    m.name = name;
    m.k = k;
    m.search = SearchKind::Knn;
    m.space = SearchSpace::Features;
    m.sampling = SamplingKind::All;
    m.aggregation = AggregationKind::ConcatCentroidDifference;
    m.mlpWidths = {width};
    return m;
}

NetworkConfig
miniPointNet()
{
    NetworkConfig net;
    net.name = "mini-pnpp";
    net.numInputPoints = 256;
    net.numClasses = 8;
    net.modules = {
        miniSa("sa1", 96, 16, 0.3f, {32, 32}),
        miniKnn("sa2", 32, 12, {32, 64}),
        miniGlobal("sa3", {64, 96}),
    };
    net.headWidths = {64};
    return net;
}

NetworkConfig
miniEdgeNet()
{
    NetworkConfig net;
    net.name = "mini-edge";
    net.numInputPoints = 128;
    net.numClasses = 6;
    net.linkedInputs = true;
    net.modules = {miniEdge("ec1", 8, 16), miniEdge("ec2", 8, 24)};
    net.concatModuleOutputs = true;
    net.globalMlpWidths = {64};
    net.headWidths = {32};
    return net;
}

NetworkConfig
miniSegNet()
{
    NetworkConfig net;
    net.name = "mini-seg";
    net.task = Task::Segmentation;
    net.numInputPoints = 128;
    net.numClasses = 5;
    net.modules = {
        miniSa("sa1", 48, 12, 0.35f, {16, 32}),
        miniGlobal("sa2", {32, 64}),
    };
    InterpModuleConfig fp1;
    fp1.name = "fp1";
    fp1.mlpWidths = {32};
    InterpModuleConfig fp2;
    fp2.name = "fp2";
    fp2.mlpWidths = {16};
    net.interpModules = {fp1, fp2};
    net.headWidths = {16};
    return net;
}

NetworkConfig
miniDetNet()
{
    NetworkConfig net;
    net.name = "mini-det";
    net.task = Task::Detection;
    net.numInputPoints = 96;
    net.numClasses = 2;
    net.modules = {
        miniSa("sa1", 32, 8, 0.4f, {16, 16}),
        miniGlobal("sa2", {32}),
    };
    net.headWidths = {16};
    net.stage2Modules = {miniGlobal("tnet", {16, 32}),
                         miniGlobal("boxnet", {32})};
    net.stage2HeadWidths = {16};
    net.stage2Outputs = 11;
    return net;
}

/** Smallest viable network: keeps the mangling sweeps affordable. */
NetworkConfig
tinyNet()
{
    NetworkConfig net;
    net.name = "tiny";
    net.numInputPoints = 32;
    net.numClasses = 2;
    net.modules = {miniSa("sa1", 8, 4, 0.5f, {4}), miniGlobal("g", {4})};
    net.headWidths = {4};
    return net;
}

PointCloud
cloudFor(const NetworkConfig &cfg, uint64_t seed = 17)
{
    geom::ModelNetSim sim(seed, cfg.numInputPoints);
    return sim.sample().cloud;
}

CompileOptions
withPasses(PassOptions::Enable enable)
{
    CompileOptions o;
    o.passes.enable = enable;
    return o;
}

void
expectBitwise(const Tensor &a, const Tensor &b, const std::string &what)
{
    ASSERT_EQ(a.rows(), b.rows()) << what;
    ASSERT_EQ(a.cols(), b.cols()) << what;
    EXPECT_EQ(a.maxAbsDiff(b), 0.0f) << what;
}

/** Compile, round-trip through bytes, and assert the loaded engine
 *  matches both the fresh engine and the stage-graph path bitwise. */
void
checkRoundTrip(const NetworkConfig &cfg, PipelineKind kind,
               PassOptions::Enable enable, const std::string &what)
{
    NetworkExecutor exec(cfg, /*weightSeed=*/3);
    CompiledEngine fresh =
        PlanCompiler::compile(exec, kind, withPasses(enable));
    std::vector<uint8_t> bytes = saveEngineToBytes(fresh);
    CompiledEngine loaded = loadEngineFromBytes(bytes.data(), bytes.size());

    EXPECT_EQ(loaded.pipeline(), fresh.pipeline()) << what;
    EXPECT_EQ(loaded.steps().size(), fresh.steps().size()) << what;

    auto fctx = fresh.makeContext();
    auto lctx = loaded.makeContext();
    PointCloud cloud = cloudFor(cfg);
    for (uint64_t seed : {1ull, 9ull}) {
        Tensor ref = exec.run(cloud, kind, seed).logits;
        expectBitwise(fresh.execute(cloud, seed, *fctx), ref,
                      what + " fresh seed " + std::to_string(seed));
        expectBitwise(loaded.execute(cloud, seed, *lctx), ref,
                      what + " loaded seed " + std::to_string(seed));
    }
}

/** Attempt a load of deliberately mangled bytes: the only acceptable
 *  outcomes are UsageError carrying StatusCode::CorruptArtifact,
 *  InternalError, or a successfully decoded engine (never executed).
 *  Anything else — another exception type, an untyped rejection, or
 *  memory badness under the sanitizers — fails the test. */
void
loadMangled(const std::vector<uint8_t> &bytes, const std::string &what)
{
    try {
        CompiledEngine e = loadEngineFromBytes(bytes.data(), bytes.size());
        (void)e; // decoded + validated + baked, but never executed
    } catch (const UsageError &e) {
        EXPECT_EQ(e.code(), StatusCode::CorruptArtifact)
            << what << ": untyped rejection: " << e.what();
    } catch (const InternalError &) {
    } catch (...) {
        FAIL() << what << ": unexpected exception type escaped load";
    }
}

// --- Round-trip bitwise parity ----------------------------------------

TEST(EngineSerialize, RoundTripAcrossPipelinesBackendsAndPasses)
{
    NetworkConfig base = miniPointNet();
    for (PipelineKind kind :
         {PipelineKind::Original, PipelineKind::Delayed,
          PipelineKind::LtdDelayed}) {
        for (neighbor::Backend backend :
             {neighbor::Backend::BruteForce, neighbor::Backend::Grid,
              neighbor::Backend::KdTree}) {
            for (auto enable :
                 {PassOptions::Enable::Off, PassOptions::Enable::On}) {
                NetworkConfig cfg = base;
                cfg.backend = backend;
                checkRoundTrip(
                    cfg, kind, enable,
                    std::string(pipelineName(kind)) + "/" +
                        neighbor::backendName(backend) +
                        (enable == PassOptions::Enable::On ? "/on"
                                                           : "/off"));
            }
        }
    }
}

TEST(EngineSerialize, RoundTripNetworkShapes)
{
    for (auto enable :
         {PassOptions::Enable::Off, PassOptions::Enable::On}) {
        std::string sfx =
            enable == PassOptions::Enable::On ? "/on" : "/off";
        for (PipelineKind kind :
             {PipelineKind::Original, PipelineKind::Delayed,
              PipelineKind::LtdDelayed})
            checkRoundTrip(miniEdgeNet(), kind, enable,
                           std::string("edge/") + pipelineName(kind) +
                               sfx);
        checkRoundTrip(miniSegNet(), PipelineKind::Delayed, enable,
                       "seg" + sfx);
        checkRoundTrip(miniSegNet(), PipelineKind::Original, enable,
                       "seg-orig" + sfx);
        checkRoundTrip(miniDetNet(), PipelineKind::Delayed, enable,
                       "det" + sfx);
    }
}

// --- Artifact bytes ---------------------------------------------------

TEST(EngineSerialize, SerializationIsDeterministic)
{
    NetworkExecutor exec(miniPointNet(), 3);
    CompiledEngine eng = PlanCompiler::compile(
        exec, PipelineKind::Delayed, withPasses(PassOptions::Enable::On));
    std::vector<uint8_t> a = saveEngineToBytes(eng);
    std::vector<uint8_t> b = saveEngineToBytes(eng);
    EXPECT_EQ(a, b);
    EXPECT_EQ(serializedEngineSize(eng),
              static_cast<int64_t>(a.size()));

    // A loaded engine re-serializes to the identical artifact.
    CompiledEngine loaded = loadEngineFromBytes(a.data(), a.size());
    EXPECT_EQ(saveEngineToBytes(loaded), a);
}

// --- Concurrency on a loaded engine -----------------------------------

TEST(EngineSerialize, ConcurrentContextsOnLoadedEngine)
{
    NetworkConfig cfg = miniPointNet();
    NetworkExecutor exec(cfg, 3);
    CompiledEngine fresh = PlanCompiler::compile(
        exec, PipelineKind::Delayed, withPasses(PassOptions::Enable::On));
    std::vector<uint8_t> bytes = saveEngineToBytes(fresh);
    CompiledEngine loaded = loadEngineFromBytes(bytes.data(), bytes.size());

    constexpr int kThreads = 4;
    constexpr int kRepsPerThread = 3;
    std::vector<PointCloud> clouds;
    for (int s = 0; s < kThreads; ++s)
        clouds.push_back(cloudFor(cfg, 31 + static_cast<uint64_t>(s)));

    // Serial references from the fresh engine.
    std::vector<Tensor> ref;
    auto rctx = fresh.makeContext();
    for (int i = 0; i < kThreads; ++i)
        ref.push_back(
            fresh.execute(clouds[static_cast<size_t>(i)],
                          100 + static_cast<uint64_t>(i), *rctx));

    // One loaded engine, one context per thread, repeated executions.
    std::vector<Tensor> got(kThreads);
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t)
        workers.emplace_back([&, t] {
            auto ctx = loaded.makeContext();
            for (int rep = 0; rep < kRepsPerThread; ++rep)
                got[static_cast<size_t>(t)] = loaded.execute(
                    clouds[static_cast<size_t>(t)],
                    100 + static_cast<uint64_t>(t), *ctx);
        });
    for (std::thread &w : workers)
        w.join();

    for (int i = 0; i < kThreads; ++i)
        expectBitwise(got[static_cast<size_t>(i)],
                      ref[static_cast<size_t>(i)],
                      "thread " + std::to_string(i));
}

// --- Robustness: corrupt artifacts never UB ---------------------------

TEST(EngineSerialize, RejectsBadMagic)
{
    NetworkExecutor exec(tinyNet(), 3);
    CompiledEngine eng = PlanCompiler::compile(
        exec, PipelineKind::Delayed, withPasses(PassOptions::Enable::On));
    std::vector<uint8_t> bytes = saveEngineToBytes(eng);
    bytes[0] ^= 0x5A;
    try {
        loadEngineFromBytes(bytes.data(), bytes.size());
        FAIL() << "bad magic accepted";
    } catch (const UsageError &e) {
        EXPECT_NE(std::string(e.what()).find("bad magic"),
                  std::string::npos)
            << e.what();
    }
}

TEST(EngineSerialize, RejectsVersionMismatch)
{
    NetworkExecutor exec(tinyNet(), 3);
    CompiledEngine eng = PlanCompiler::compile(
        exec, PipelineKind::Delayed, withPasses(PassOptions::Enable::On));
    std::vector<uint8_t> bytes = saveEngineToBytes(eng);
    uint32_t bogus = kEngineFormatVersion + 1;
    std::memcpy(bytes.data() + 4, &bogus, sizeof bogus);
    try {
        loadEngineFromBytes(bytes.data(), bytes.size());
        FAIL() << "future format version accepted";
    } catch (const UsageError &e) {
        EXPECT_NE(std::string(e.what()).find("not supported"),
                  std::string::npos)
            << e.what();
    }
}

TEST(EngineSerialize, TruncationSweepNeverUB)
{
    NetworkExecutor exec(tinyNet(), 3);
    CompiledEngine eng = PlanCompiler::compile(
        exec, PipelineKind::Delayed, withPasses(PassOptions::Enable::On));
    std::vector<uint8_t> bytes = saveEngineToBytes(eng);
    ASSERT_GT(bytes.size(), 64u);

    // Every prefix of the header region, then evenly spaced cuts
    // through the tables. A strict prefix can never decode to a full
    // artifact (the trailing-bytes check would need the exact size),
    // so each cut must throw — cleanly.
    std::vector<size_t> cuts;
    for (size_t n = 0; n < 64; ++n)
        cuts.push_back(n);
    for (size_t n = 64; n + 1 < bytes.size();
         n += std::max<size_t>(1, bytes.size() / 256))
        cuts.push_back(n);
    for (size_t n : cuts) {
        std::vector<uint8_t> cut(bytes.begin(),
                                 bytes.begin() +
                                     static_cast<ptrdiff_t>(n));
        try {
            loadEngineFromBytes(cut.data(), cut.size());
            FAIL() << "truncated artifact of " << n
                   << " bytes accepted";
        } catch (const UsageError &) {
        } catch (const InternalError &) {
        } catch (...) {
            FAIL() << "truncation at " << n
                   << ": unexpected exception type";
        }
    }
}

TEST(EngineSerialize, ByteFlipSweepNeverUB)
{
    NetworkExecutor exec(tinyNet(), 3);
    CompiledEngine eng = PlanCompiler::compile(
        exec, PipelineKind::Delayed, withPasses(PassOptions::Enable::On));
    const std::vector<uint8_t> good = saveEngineToBytes(eng);

    // Flip every byte once (XOR 0xFF), plus milder single-bit flips at
    // every offset; each mangled artifact must either throw a typed
    // error or decode+validate+bake cleanly. Under the CI sanitize job
    // this sweep is the "never UB" proof.
    for (size_t i = 0; i < good.size(); ++i) {
        std::vector<uint8_t> m = good;
        m[i] ^= 0xFF;
        loadMangled(m, "xor 0xFF at " + std::to_string(i));
        m = good;
        m[i] ^= 0x01;
        loadMangled(m, "xor 0x01 at " + std::to_string(i));
    }
}

TEST(EngineSerialize, SeededFuzzFlipsNeverCrashAndStayTyped)
{
    // Deterministic fuzz over an artifact WITH a QNT1 quant section,
    // so the quant-entry decoding and the quantized-role validation
    // are in the blast radius too. Each round flips 1-4 seed-chosen
    // bits anywhere in the artifact; the only acceptable outcomes are
    // a clean decode or a typed CorruptArtifact rejection. The seed is
    // fixed so a CI failure reproduces locally.
    NetworkConfig cfg = tinyNet();
    NetworkExecutor exec(cfg, 3);
    std::vector<PointCloud> calib = {cloudFor(cfg, 5), cloudFor(cfg, 6)};
    CompiledEngine eng = quant::compileQuantizedPft(
        exec, PipelineKind::Delayed,
        withPasses(PassOptions::Enable::On), calib, /*seedBase=*/1);
    ASSERT_GT(eng.stats().buffersQuantized, 0)
        << "fuzz corpus lost its quant section";
    const std::vector<uint8_t> good = saveEngineToBytes(eng);

    Rng rng(20260808);
    for (int round = 0; round < 1000; ++round) {
        std::vector<uint8_t> m = good;
        int64_t flips = rng.uniformInt(1, 4);
        for (int64_t f = 0; f < flips; ++f) {
            size_t at = static_cast<size_t>(rng.uniformInt(
                0, static_cast<int64_t>(m.size()) - 1));
            m[at] ^= static_cast<uint8_t>(1u << rng.uniformInt(0, 7));
        }
        loadMangled(m, "fuzz round " + std::to_string(round));
        if (::testing::Test::HasFailure())
            break; // first failing round pinpoints the repro
    }
}

TEST(EngineSerialize, TryLoadReturnsTypedStatusInsteadOfThrowing)
{
    NetworkExecutor exec(tinyNet(), 3);
    CompiledEngine eng = PlanCompiler::compile(
        exec, PipelineKind::Delayed, withPasses(PassOptions::Enable::On));
    std::vector<uint8_t> bytes = saveEngineToBytes(eng);

    Expected<CompiledEngine> ok =
        tryLoadEngineFromBytes(bytes.data(), bytes.size());
    ASSERT_TRUE(ok.hasValue()) << ok.status().toString();
    PointCloud cloud = cloudFor(tinyNet());
    auto ctx = ok.value().makeContext();
    expectBitwise(ok.value().execute(cloud, 1, *ctx),
                  exec.run(cloud, PipelineKind::Delayed, 1).logits,
                  "tryLoad engine parity");

    bytes[0] ^= 0xFF; // break the magic
    Expected<CompiledEngine> bad =
        tryLoadEngineFromBytes(bytes.data(), bytes.size());
    ASSERT_FALSE(bad.hasValue());
    EXPECT_EQ(bad.status().code(), StatusCode::CorruptArtifact)
        << bad.status().toString();

    Expected<CompiledEngine> missing =
        tryLoadEngine("/nonexistent/engine.meso");
    ASSERT_FALSE(missing.hasValue());
    EXPECT_EQ(missing.status().code(), StatusCode::InvalidInput)
        << missing.status().toString();
}

} // namespace
} // namespace mesorasi::core::plan
