/**
 * @file
 * Fault-injection + fault-isolation tests: the robustness contract of
 * the serving engine, exercised by deterministic seeded faults.
 *
 *  1. Harness mechanics: arming is deterministic, sites fire exactly
 *     once at their armed hit, unknown sites are rejected.
 *  2. Every planted site surfaces as the right StatusCode through its
 *     natural unwind path — thread pool, plan step, arena, workspace,
 *     artifact loader — never as a crash or std::terminate.
 *  3. Isolation and recovery: a mid-plan fault poisons only its own
 *     ExecutionContext (reuse rejected with PoisonedContext; reset()
 *     restores bitwise-identical results), one failing item in an
 *     8-cloud batch gets a typed per-item Status while the other seven
 *     match the fault-free sequential run bit for bit, and a context
 *     poisoned on one thread never disturbs sibling threads.
 *  4. A seed sweep with every site armed never crashes, and a disarmed
 *     rerun reproduces fault-free bitwise results — the in-process
 *     version of the CI MESORASI_FAULT_SEED sweep.
 *
 * Every compile pins PassOptions::Enable explicitly so the suite is
 * green regardless of MESORASI_PLAN_PASSES.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "common/fault_injection.hpp"
#include "common/thread_pool.hpp"
#include "common/workspace.hpp"
#include "core/batch_runner.hpp"
#include "core/plan/plan_compiler.hpp"
#include "core/scheduler.hpp"
#include "core/plan/serialize.hpp"
#include "geom/datasets.hpp"

namespace mesorasi::core::plan {
namespace {

using geom::PointCloud;
using tensor::Tensor;

NetworkConfig
miniNet()
{
    NetworkConfig cfg;
    cfg.name = "mini-fault";
    cfg.numInputPoints = 64;
    cfg.numClasses = 4;

    ModuleConfig sa1;
    sa1.name = "sa1";
    sa1.numCentroids = 24;
    sa1.k = 8;
    sa1.search = SearchKind::Ball;
    sa1.radius = 0.4f;
    sa1.sampling = SamplingKind::Random;
    sa1.mlpWidths = {8, 16};
    cfg.modules.push_back(sa1);

    ModuleConfig global;
    global.name = "g";
    global.search = SearchKind::Global;
    global.mlpWidths = {16};
    cfg.modules.push_back(global);

    cfg.headWidths = {8};
    return cfg;
}

CompileOptions
passesOn()
{
    CompileOptions o;
    o.passes.enable = PassOptions::Enable::On;
    return o;
}

std::vector<PointCloud>
someClouds(int32_t count, int32_t numPoints, uint64_t seed = 33)
{
    geom::ModelNetSim sim(seed, numPoints);
    std::vector<PointCloud> clouds;
    for (int32_t i = 0; i < count; ++i)
        clouds.push_back(sim.sample().cloud);
    return clouds;
}

void
expectBitwise(const Tensor &a, const Tensor &b, const std::string &what)
{
    ASSERT_EQ(a.rows(), b.rows()) << what;
    ASSERT_EQ(a.cols(), b.cols()) << what;
    EXPECT_EQ(a.maxAbsDiff(b), 0.0f) << what;
}

// --- Harness mechanics ------------------------------------------------

TEST(FaultHarness, FiresExactlyOnceAtTheArmedHit)
{
    fault::ScopedArm arm(0, std::string(fault::kPlanStepThrow) + "@3");
    EXPECT_TRUE(fault::armed());
    EXPECT_FALSE(fault::fires(fault::kPlanStepThrow)); // hit 1
    EXPECT_FALSE(fault::fires(fault::kPlanStepThrow)); // hit 2
    EXPECT_TRUE(fault::fires(fault::kPlanStepThrow));  // hit 3: fires
    EXPECT_FALSE(fault::fires(fault::kPlanStepThrow)); // hit 4
    EXPECT_EQ(fault::hitCount(fault::kPlanStepThrow), 4u);
    EXPECT_EQ(fault::firedCount(), 1u);
    // An unarmed site never fires and never counts.
    EXPECT_FALSE(fault::fires(fault::kArenaAlloc));
    EXPECT_EQ(fault::hitCount(fault::kArenaAlloc), 0u);
}

TEST(FaultHarness, DisarmStopsCountingAndScopedArmRestores)
{
    {
        fault::ScopedArm arm(7, "all");
        EXPECT_TRUE(fault::armed());
        // pick is stable across calls for a fixed (seed, site).
        EXPECT_EQ(fault::pick(fault::kArtifactByteFlip, 1000),
                  fault::pick(fault::kArtifactByteFlip, 1000));
    }
    EXPECT_FALSE(fault::armed());
    EXPECT_FALSE(fault::fires(fault::kPlanStepThrow));
    EXPECT_EQ(fault::firedCount(), 0u);
}

TEST(FaultHarness, RejectsUnknownSitesAndBadSpecs)
{
    try {
        fault::arm(0, "no.such.site");
        fault::disarm();
        FAIL() << "unknown site accepted";
    } catch (const UsageError &e) {
        EXPECT_EQ(e.code(), StatusCode::InvalidInput);
    }
    try {
        fault::arm(0, std::string(fault::kPlanStepThrow) + "@0");
        fault::disarm();
        FAIL() << "hit 0 accepted (hits are 1-based)";
    } catch (const UsageError &e) {
        EXPECT_EQ(e.code(), StatusCode::InvalidInput);
    }
    EXPECT_FALSE(fault::armed());
}

// --- Individual sites surface as typed errors -------------------------

TEST(FaultSites, ThreadPoolTaskFaultIsTypedAndPoolSurvives)
{
    ThreadPool pool(4);
    int64_t n = static_cast<int64_t>(pool.size()) * 4;
    {
        fault::ScopedArm arm(0,
                             std::string(fault::kThreadPoolTask) + "@1");
        std::atomic<int64_t> ran{0};
        try {
            pool.parallelFor(n, /*grain=*/1, [&](int64_t, int64_t) {
                ran.fetch_add(1);
            });
            FAIL() << "injected pool fault did not surface";
        } catch (const InternalError &e) {
            EXPECT_EQ(e.code(), StatusCode::ExecFault);
        }
        EXPECT_EQ(fault::firedCount(), 1u);
    }
    // The pool keeps serving after the fault.
    std::atomic<int64_t> sum{0};
    pool.parallelFor(n, /*grain=*/1, [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i)
            sum.fetch_add(i);
    });
    EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

TEST(FaultSites, SubmitAdmissionFaultIsSynchronousAndTyped)
{
    // Admission failure throws to the submitter before any task is
    // queued: a fire-and-forget caller can never lose a half-registered
    // task to a fault it cannot observe.
    ThreadPool pool(2);
    fault::ScopedArm arm(0, std::string(fault::kThreadPoolTask) + "@1");
    bool ran = false;
    try {
        pool.submit([&] { ran = true; });
        FAIL() << "injected admission fault did not surface";
    } catch (const InternalError &e) {
        EXPECT_EQ(e.code(), StatusCode::ExecFault);
    }
    EXPECT_FALSE(ran);
    // The next submit is admitted and runs.
    TaskHandle h = pool.submit([&] { ran = true; });
    h.wait();
    EXPECT_TRUE(ran);
}

TEST(FaultSites, SchedulerDegradesInlineWhenPoolRefusesAStage)
{
    // When submit() refuses a stage task, the scheduler runs the stage
    // on the launching thread instead: the schedule completes with
    // every stage executed — degraded, never deadlocked.
    ThreadPool pool(4);
    std::atomic<int> ran{0};
    core::StageGraph g;
    core::StageId a = g.add(core::StageKind::Sample, "t", "a",
                            [&] { ran.fetch_add(1); });
    g.add(core::StageKind::Search, "t", "b", [&] { ran.fetch_add(1); },
          {a});
    g.add(core::StageKind::Epilogue, "t", "c", [&] { ran.fetch_add(1); },
          {a});
    fault::ScopedArm arm(0, std::string(fault::kThreadPoolTask) + "@1");
    core::StageTimeline tl = core::StageScheduler::run(
        g, pool, core::SchedulePolicy::Overlapped);
    EXPECT_EQ(ran.load(), 3);
    EXPECT_EQ(tl.stages.size(), 3u);
    EXPECT_EQ(fault::firedCount(), 1u);
}

TEST(FaultSites, ArenaAllocFaultIsResourceExhausted)
{
    NetworkExecutor exec(miniNet(), /*weightSeed=*/3);
    CompiledEngine engine =
        PlanCompiler::compile(exec, PipelineKind::Delayed, passesOn());
    fault::ScopedArm arm(0, std::string(fault::kArenaAlloc) + "@1");
    try {
        engine.makeContext();
        FAIL() << "injected arena fault did not surface";
    } catch (const InternalError &e) {
        EXPECT_EQ(e.code(), StatusCode::ResourceExhausted);
    }
    fault::disarm();
    EXPECT_NE(engine.makeContext(), nullptr);
}

TEST(FaultSites, WorkspaceGrowthFaultIsResourceExhausted)
{
    Workspace ws;
    {
        fault::ScopedArm arm(0,
                             std::string(fault::kWorkspaceGrow) + "@1");
        try {
            ws.floats(0, 64);
            FAIL() << "injected workspace fault did not surface";
        } catch (const InternalError &e) {
            EXPECT_EQ(e.code(), StatusCode::ResourceExhausted);
        }
    }
    // Growth succeeds once disarmed; warm reuse never re-enters the
    // growth path at all.
    EXPECT_NE(ws.floats(0, 64), nullptr);
    EXPECT_EQ(ws.capacity(0), 64u);
}

TEST(FaultSites, ArtifactByteFlipRejectsTypedOrLoadsAndRecovers)
{
    NetworkExecutor exec(miniNet(), /*weightSeed=*/3);
    CompiledEngine engine =
        PlanCompiler::compile(exec, PipelineKind::Delayed, passesOn());
    std::vector<uint8_t> bytes = saveEngineToBytes(engine);
    PointCloud cloud = someClouds(1, 64)[0];
    auto rctx = engine.makeContext();
    Tensor ref = engine.execute(cloud, 5, *rctx);

    // Sweep seeds so the flip lands in different regions: headers and
    // tables must reject with CorruptArtifact; flips into weight
    // payloads may decode cleanly — both are acceptable, crashing is
    // not. The disarmed reload must always reproduce ref bitwise.
    for (uint64_t seed = 0; seed < 32; ++seed) {
        fault::arm(seed, std::string(fault::kArtifactByteFlip) + "@1");
        try {
            CompiledEngine mangled =
                loadEngineFromBytes(bytes.data(), bytes.size());
            (void)mangled; // decoded cleanly; never executed
        } catch (const UsageError &e) {
            EXPECT_EQ(e.code(), StatusCode::CorruptArtifact)
                << "seed " << seed << ": " << e.what();
        } catch (const InternalError &) {
        }
        fault::disarm();
        CompiledEngine reloaded =
            loadEngineFromBytes(bytes.data(), bytes.size());
        auto ctx = reloaded.makeContext();
        expectBitwise(reloaded.execute(cloud, 5, *ctx), ref,
                      "disarmed reload, seed " + std::to_string(seed));
    }
}

// --- Context poisoning and recovery -----------------------------------

TEST(FaultIsolation, StepFaultPoisonsContextAndResetRecoversBitwise)
{
    NetworkExecutor exec(miniNet(), /*weightSeed=*/3);
    CompiledEngine engine =
        PlanCompiler::compile(exec, PipelineKind::Delayed, passesOn());
    PointCloud cloud = someClouds(1, 64)[0];

    auto ctx = engine.makeContext();
    Tensor ref = engine.execute(cloud, 5, *ctx); // fault-free baseline

    {
        fault::ScopedArm arm(0,
                             std::string(fault::kPlanStepThrow) + "@2");
        Status s = engine.tryExecute(cloud, 5, *ctx);
        EXPECT_EQ(s.code(), StatusCode::ExecFault) << s.toString();
    }
    EXPECT_TRUE(ctx->poisoned());
    EXPECT_FALSE(ctx->poisonMessage().empty());

    // Reuse without reset is rejected — via both APIs — and the
    // rejection does not clear the poison.
    Status reuse = engine.tryExecute(cloud, 5, *ctx);
    EXPECT_EQ(reuse.code(), StatusCode::PoisonedContext)
        << reuse.toString();
    try {
        engine.execute(cloud, 5, *ctx);
        FAIL() << "poisoned context accepted an execute";
    } catch (const UsageError &e) {
        EXPECT_EQ(e.code(), StatusCode::PoisonedContext);
    }
    EXPECT_TRUE(ctx->poisoned());

    // reset() restores a serviceable context with bitwise-identical
    // results to the pre-fault baseline.
    ctx->reset();
    EXPECT_FALSE(ctx->poisoned());
    expectBitwise(engine.execute(cloud, 5, *ctx), ref,
                  "post-reset execute");
}

TEST(FaultIsolation, NanPoisonSurfacesAsNumericFault)
{
    NetworkExecutor exec(miniNet(), /*weightSeed=*/3);
    CompiledEngine engine =
        PlanCompiler::compile(exec, PipelineKind::Delayed, passesOn());
    PointCloud cloud = someClouds(1, 64)[0];
    auto ctx = engine.makeContext();
    Tensor ref = engine.execute(cloud, 5, *ctx);

    // Poison the final step's output — it lands in the logits, so the
    // end-of-execute finite scan must catch it.
    size_t lastStep = engine.steps().size();
    {
        fault::ScopedArm arm(0, std::string(fault::kPlanNanPoison) +
                                    "@" + std::to_string(lastStep));
        Status s = engine.tryExecute(cloud, 5, *ctx);
        EXPECT_EQ(s.code(), StatusCode::NumericFault) << s.toString();
    }
    EXPECT_TRUE(ctx->poisoned());
    ctx->reset();
    expectBitwise(engine.execute(cloud, 5, *ctx), ref,
                  "post-NaN reset execute");
}

TEST(FaultIsolation, InvalidInputDoesNotPoisonTheContext)
{
    NetworkExecutor exec(miniNet(), /*weightSeed=*/3);
    CompiledEngine engine =
        PlanCompiler::compile(exec, PipelineKind::Delayed, passesOn());
    PointCloud cloud = someClouds(1, 64)[0];
    auto ctx = engine.makeContext();
    Tensor ref = engine.execute(cloud, 5, *ctx);

    PointCloud nanCloud = cloud;
    nanCloud[3].y = std::numeric_limits<float>::quiet_NaN();
    EXPECT_EQ(engine.tryExecute(nanCloud, 5, *ctx).code(),
              StatusCode::InvalidInput);
    EXPECT_EQ(engine.validate(nanCloud).code(),
              StatusCode::InvalidInput);

    PointCloud small = someClouds(1, 32)[0];
    EXPECT_EQ(engine.tryExecute(small, 5, *ctx).code(),
              StatusCode::ShapeMismatch);
    EXPECT_EQ(engine.tryExecute(PointCloud(), 5, *ctx).code(),
              StatusCode::InvalidInput);

    // The rejections happened at the front door: the context is still
    // clean and still produces the baseline bitwise.
    EXPECT_FALSE(ctx->poisoned());
    expectBitwise(engine.execute(cloud, 5, *ctx), ref,
                  "execute after rejected inputs");
}

TEST(FaultIsolation, ContextPoolResetsPoisonedContextsOnRelease)
{
    NetworkExecutor exec(miniNet(), /*weightSeed=*/3);
    CompiledEngine engine =
        PlanCompiler::compile(exec, PipelineKind::Delayed, passesOn());
    PointCloud cloud = someClouds(1, 64)[0];
    ContextPool pool(engine);

    auto ctx = pool.acquire();
    Tensor ref = engine.execute(cloud, 5, *ctx);
    {
        fault::ScopedArm arm(0,
                             std::string(fault::kPlanStepThrow) + "@1");
        EXPECT_EQ(engine.tryExecute(cloud, 5, *ctx).code(),
                  StatusCode::ExecFault);
    }
    EXPECT_TRUE(ctx->poisoned());
    ExecutionContext *raw = ctx.get();
    pool.release(std::move(ctx));

    // The recycled context is the same object, already reset, and
    // serves the baseline bitwise.
    auto again = pool.acquire();
    EXPECT_EQ(again.get(), raw);
    EXPECT_FALSE(again->poisoned());
    expectBitwise(engine.execute(cloud, 5, *again), ref,
                  "recycled post-poison context");
}

// --- Batch isolation (the acceptance scenario) ------------------------

TEST(FaultIsolation, OneFaultedItemIn8CloudBatchOthersBitwise)
{
    NetworkExecutor exec(miniNet(), /*weightSeed=*/3);
    CompiledEngine engine =
        PlanCompiler::compile(exec, PipelineKind::Delayed, passesOn());
    std::vector<PointCloud> clouds = someClouds(8, 64);
    core::BatchRunner runner(exec, /*numThreads=*/1);

    BatchResult ref = runner.run(engine, clouds, /*seedBase=*/7);
    ASSERT_EQ(ref.numFailed(), 0);

    // Fail cloud 3 at its second step: the sequential walk hits the
    // step site numSteps times per item, so item 3 owns hits
    // [3*S+1, 4*S].
    size_t S = engine.steps().size();
    fault::ScopedArm arm(0, std::string(fault::kPlanStepThrow) + "@" +
                                std::to_string(3 * S + 2));
    BatchResult got = runner.run(engine, clouds, /*seedBase=*/7);

    EXPECT_EQ(got.numFailed(), 1);
    EXPECT_EQ(got.items[3].status.code(), StatusCode::ExecFault)
        << got.items[3].status.toString();
    EXPECT_EQ(got.items[3].predicted, -1);
    for (size_t i = 0; i < clouds.size(); ++i) {
        if (i == 3)
            continue;
        ASSERT_TRUE(got.items[i].status.isOk())
            << "item " << i << ": " << got.items[i].status.toString();
        expectBitwise(got.items[i].run.logits, ref.items[i].run.logits,
                      "item " + std::to_string(i));
        EXPECT_EQ(got.items[i].predicted, ref.items[i].predicted);
    }
}

TEST(FaultIsolation, MalformedCloudsGetTypedStatusOthersServe)
{
    NetworkExecutor exec(miniNet(), /*weightSeed=*/3);
    CompiledEngine engine =
        PlanCompiler::compile(exec, PipelineKind::Delayed, passesOn());
    std::vector<PointCloud> clouds = someClouds(8, 64);
    core::BatchRunner runner(exec, /*numThreads=*/1);
    BatchResult ref = runner.run(engine, clouds, /*seedBase=*/7);

    std::vector<PointCloud> bad = clouds;
    bad[2][5].x = std::numeric_limits<float>::infinity();
    bad[5] = someClouds(1, 32)[0]; // wrong point count

    BatchResult got = runner.run(engine, bad, /*seedBase=*/7);
    EXPECT_EQ(got.numFailed(), 2);
    EXPECT_EQ(got.items[2].status.code(), StatusCode::InvalidInput);
    EXPECT_EQ(got.items[5].status.code(), StatusCode::ShapeMismatch);
    for (size_t i = 0; i < clouds.size(); ++i) {
        if (i == 2 || i == 5)
            continue;
        ASSERT_TRUE(got.items[i].status.isOk());
        expectBitwise(got.items[i].run.logits, ref.items[i].run.logits,
                      "item " + std::to_string(i));
    }

    // The stage-graph path applies the same front-door validation.
    BatchResult gref = runner.run(clouds, PipelineKind::Delayed, 7);
    BatchResult ggot = runner.run(bad, PipelineKind::Delayed, 7);
    EXPECT_EQ(ggot.items[2].status.code(), StatusCode::InvalidInput);
    for (size_t i = 0; i < clouds.size(); ++i) {
        if (i == 2 || i == 5)
            continue;
        ASSERT_TRUE(ggot.items[i].status.isOk());
        expectBitwise(ggot.items[i].run.logits,
                      gref.items[i].run.logits,
                      "graph item " + std::to_string(i));
    }
}

TEST(FaultIsolation, PoisonOnOneThreadDoesNotDisturbSiblings)
{
    NetworkExecutor exec(miniNet(), /*weightSeed=*/3);
    CompiledEngine engine =
        PlanCompiler::compile(exec, PipelineKind::Delayed, passesOn());
    PointCloud cloud = someClouds(1, 64)[0];
    auto rctx = engine.makeContext();
    Tensor ref = engine.execute(cloud, 5, *rctx);

    constexpr int kThreads = 4;
    std::vector<std::unique_ptr<ExecutionContext>> ctxs;
    for (int t = 0; t < kThreads; ++t)
        ctxs.push_back(engine.makeContext());
    std::vector<Status> statuses(kThreads);
    std::vector<Tensor> logits(kThreads);

    // Exactly one global firing: whichever thread records hit 1 takes
    // the fault; the siblings must complete bitwise clean.
    fault::ScopedArm arm(0, std::string(fault::kPlanStepThrow) + "@1");
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            statuses[static_cast<size_t>(t)] =
                engine.tryExecute(cloud, 5, *ctxs[static_cast<size_t>(t)]);
            if (statuses[static_cast<size_t>(t)].isOk())
                logits[static_cast<size_t>(t)] =
                    ctxs[static_cast<size_t>(t)]->logits();
        });
    }
    for (auto &th : threads)
        th.join();

    int faulted = 0;
    for (int t = 0; t < kThreads; ++t) {
        const Status &s = statuses[static_cast<size_t>(t)];
        if (!s.isOk()) {
            ++faulted;
            EXPECT_EQ(s.code(), StatusCode::ExecFault) << s.toString();
            EXPECT_TRUE(ctxs[static_cast<size_t>(t)]->poisoned());
        } else {
            EXPECT_FALSE(ctxs[static_cast<size_t>(t)]->poisoned());
            expectBitwise(logits[static_cast<size_t>(t)], ref,
                          "thread " + std::to_string(t));
        }
    }
    EXPECT_EQ(faulted, 1);
    EXPECT_EQ(fault::firedCount(), 1u);
}

// --- Seed sweep: never crash, always recover --------------------------

TEST(FaultSweep, AllSitesArmedNeverCrashAndDisarmedRerunIsBitwise)
{
    NetworkExecutor exec(miniNet(), /*weightSeed=*/3);
    CompiledEngine engine =
        PlanCompiler::compile(exec, PipelineKind::Delayed, passesOn());
    std::vector<PointCloud> clouds = someClouds(4, 64);
    core::BatchRunner runner(exec, /*numThreads=*/1);
    BatchResult ref = runner.run(engine, clouds, /*seedBase=*/7);
    ASSERT_EQ(ref.numFailed(), 0);

    for (uint64_t seed = 1; seed <= 8; ++seed) {
        fault::arm(seed, "all");
        // The armed run may fault any subset of items (or none, when
        // no site reaches its seed-derived hit) — every failure must
        // be a typed per-item status, and the batch call itself must
        // return normally.
        BatchResult armed = runner.run(engine, clouds, /*seedBase=*/7);
        for (size_t i = 0; i < armed.items.size(); ++i) {
            if (armed.items[i].status.isOk())
                continue;
            StatusCode c = armed.items[i].status.code();
            EXPECT_TRUE(c == StatusCode::ExecFault ||
                        c == StatusCode::NumericFault ||
                        c == StatusCode::ResourceExhausted)
                << "seed " << seed << " item " << i << ": "
                << armed.items[i].status.toString();
        }
        fault::disarm();

        BatchResult clean = runner.run(engine, clouds, /*seedBase=*/7);
        ASSERT_EQ(clean.numFailed(), 0) << "seed " << seed;
        for (size_t i = 0; i < clean.items.size(); ++i)
            expectBitwise(clean.items[i].run.logits,
                          ref.items[i].run.logits,
                          "seed " + std::to_string(seed) + " item " +
                              std::to_string(i));
    }
}

} // namespace
} // namespace mesorasi::core::plan
