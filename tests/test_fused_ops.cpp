/**
 * @file
 * Fused gather-reduce / workspace kernel tests:
 *
 *  1. Bitwise parity: every fused _Into kernel must produce exactly the
 *     bytes its allocating composition produces (gatherRows +
 *     maxReduceRows, maxReduceRows over an index list, matmul), and the
 *     workspace-based Mlp::forward must match the layer-by-layer path.
 *  2. Zero allocation: after one warm-up pass, the fused kernels and
 *     the MLP's steady state must not touch the heap (verified with a
 *     global operator new hook counting on the calling thread).
 *  3. Workspace reuse: grow-only slots with stable pointers once warm.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <new>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "common/workspace.hpp"
#include "nn/mlp.hpp"
#include "tensor/init.hpp"
#include "tensor/ops.hpp"

// --- Test allocator hook ----------------------------------------------
//
// Counts operator-new calls made by the calling thread while enabled.
// thread_local so pool workers and gtest internals on other threads
// never perturb the count; the hot-path tests force inline execution so
// all work happens on this thread.

namespace {

thread_local int64_t t_alloc_count = 0;
thread_local bool t_count_allocs = false;

struct AllocCounterScope
{
    AllocCounterScope()
    {
        t_alloc_count = 0;
        t_count_allocs = true;
    }
    ~AllocCounterScope() { t_count_allocs = false; }
    int64_t count() const { return t_alloc_count; }
};

} // namespace

void *
operator new(std::size_t n)
{
    if (t_count_allocs)
        ++t_alloc_count;
    void *p = std::malloc(n ? n : 1);
    if (!p)
        throw std::bad_alloc();
    return p;
}

void *
operator new[](std::size_t n)
{
    return ::operator new(n);
}

void operator delete(void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete[](void *p, std::size_t) noexcept { std::free(p); }

namespace mesorasi::tensor {
namespace {

using mesorasi::Rng;
using mesorasi::ThreadPool;
using mesorasi::Workspace;

Tensor
randomTensor(uint64_t seed, int32_t rows, int32_t cols)
{
    Rng rng(seed);
    return uniform(rng, rows, cols, -2.0f, 2.0f);
}

bool
bitwiseEqualRow(const float *a, const float *b, int32_t n)
{
    return std::memcmp(a, b, static_cast<size_t>(n) * sizeof(float)) == 0;
}

// --- Bitwise parity ----------------------------------------------------

TEST(FusedOps, GatherMaxReduceMatchesUnfusedBitwise)
{
    Tensor x = randomTensor(1, 200, 33);
    Rng rng(2);
    for (int trial = 0; trial < 8; ++trial) {
        int32_t k = static_cast<int32_t>(rng.uniformInt(1, 32));
        std::vector<int32_t> rows;
        for (int32_t j = 0; j < k; ++j)
            rows.push_back(
                static_cast<int32_t>(rng.uniformInt(0, x.rows() - 1)));
        Tensor unfused = maxReduceRows(gatherRows(x, rows));
        std::vector<float> fused(x.cols());
        gatherMaxReduceInto(fused.data(), x, rows);
        EXPECT_TRUE(bitwiseEqualRow(fused.data(), unfused.row(0),
                                    x.cols()))
            << "trial " << trial;
    }
}

TEST(FusedOps, GatherMaxReduceHandlesDuplicateIndices)
{
    Tensor x = randomTensor(3, 16, 5);
    std::vector<int32_t> rows{7, 7, 7, 7}; // ball-query padding pattern
    std::vector<float> fused(x.cols());
    gatherMaxReduceInto(fused.data(), x, rows);
    EXPECT_TRUE(bitwiseEqualRow(fused.data(), x.row(7), x.cols()));
}

TEST(FusedOps, GatherMaxReduceRejectsBadInput)
{
    Tensor x = randomTensor(4, 8, 3);
    std::vector<float> dst(3);
    EXPECT_THROW(gatherMaxReduceInto(dst.data(), x, {}),
                 mesorasi::UsageError);
    EXPECT_THROW(gatherMaxReduceInto(dst.data(), x, {8}),
                 mesorasi::UsageError);
}

TEST(FusedOps, BlockMaxReduceMatchesIndexListBitwise)
{
    Tensor x = randomTensor(5, 96, 17);
    for (int32_t begin : {0, 8, 64}) {
        int32_t k = 13;
        std::vector<int32_t> rows;
        for (int32_t j = 0; j < k; ++j)
            rows.push_back(begin + j);
        Tensor unfused = maxReduceRows(x, rows);
        std::vector<float> fused(x.cols());
        maxReduceRowsInto(fused.data(), x, begin, k);
        EXPECT_TRUE(bitwiseEqualRow(fused.data(), unfused.row(0),
                                    x.cols()));
    }
    std::vector<float> dst(17);
    EXPECT_THROW(maxReduceRowsInto(dst.data(), x, 90, 13),
                 mesorasi::UsageError);
    EXPECT_THROW(maxReduceRowsInto(dst.data(), x, 0, 0),
                 mesorasi::UsageError);
}

TEST(FusedOps, ReductionsMatchUnfusedSeedsUnderNan)
{
    // The two unfused compositions seed differently: the index-list
    // maxReduceRows starts from -inf (std::max drops a NaN right
    // operand), while maxReduceRows(gathered) starts from the first
    // row (a first-row NaN propagates). Each fused kernel must match
    // its own composition byte-for-byte even with NaNs present.
    float nan = std::numeric_limits<float>::quiet_NaN();
    Tensor x = randomTensor(15, 6, 4);
    x(2, 1) = nan; // first row of the block below
    x(4, 3) = nan;

    std::vector<int32_t> rows{2, 3, 4};
    Tensor listRef = maxReduceRows(x, rows);
    std::vector<float> blockFused(x.cols());
    maxReduceRowsInto(blockFused.data(), x, 2, 3);
    EXPECT_TRUE(bitwiseEqualRow(blockFused.data(), listRef.row(0),
                                x.cols()));

    Tensor gatherRef = maxReduceRows(gatherRows(x, rows));
    std::vector<float> gatherFused(x.cols());
    gatherMaxReduceInto(gatherFused.data(), x, rows);
    EXPECT_TRUE(bitwiseEqualRow(gatherFused.data(), gatherRef.row(0),
                                x.cols()));
}

TEST(FusedOps, MatmulIntoMatchesMatmulBitwise)
{
    Tensor a = randomTensor(6, 40, 24);
    Tensor b = randomTensor(7, 24, 31);
    Tensor expect = matmul(a, b);

    // Write into a strided block (stride > cols on both sides) embedded
    // in a larger buffer, with a poisoned background to catch stray
    // writes.
    int64_t dstStride = b.cols() + 5;
    std::vector<float> dst(static_cast<size_t>(a.rows()) * dstStride,
                           -1234.5f);
    matmulInto(dst.data(), dstStride, a.data(), a.cols(), a.rows(), b);
    for (int32_t r = 0; r < a.rows(); ++r) {
        EXPECT_TRUE(bitwiseEqualRow(dst.data() + r * dstStride,
                                    expect.row(r), b.cols()))
            << "row " << r;
        for (int64_t pad = b.cols(); pad < dstStride; ++pad)
            EXPECT_EQ(dst[r * dstStride + pad], -1234.5f);
    }

    // A strided input block (submatrix of a wider activation buffer).
    int64_t aStride = a.cols() + 3;
    std::vector<float> wide(static_cast<size_t>(a.rows()) * aStride,
                            9.0f);
    for (int32_t r = 0; r < a.rows(); ++r)
        std::memcpy(wide.data() + r * aStride, a.row(r),
                    sizeof(float) * a.cols());
    std::vector<float> dst2(static_cast<size_t>(a.rows()) * b.cols());
    matmulInto(dst2.data(), b.cols(), wide.data(), aStride, a.rows(), b);
    for (int32_t r = 0; r < a.rows(); ++r)
        EXPECT_TRUE(bitwiseEqualRow(dst2.data() + r * b.cols(),
                                    expect.row(r), b.cols()));

    EXPECT_THROW(matmulInto(dst2.data(), b.cols() - 1, a.data(),
                            a.cols(), a.rows(), b),
                 mesorasi::UsageError);
}

TEST(FusedOps, MlpForwardMatchesLayerwiseBitwise)
{
    Rng wrng(11);
    nn::Mlp mlp(wrng, {12, 20, 28, 16}, nn::Activation::Relu);
    Tensor x = randomTensor(12, 700, 12); // crosses the chunk boundary

    Tensor fused = mlp.forward(x);
    Tensor ref = x;
    for (size_t l = 0; l < mlp.numLayers(); ++l)
        ref = mlp.layer(l).forward(ref);

    ASSERT_EQ(fused.rows(), ref.rows());
    ASSERT_EQ(fused.cols(), ref.cols());
    EXPECT_TRUE(bitwiseEqualRow(fused.data(), ref.data(),
                                static_cast<int32_t>(fused.numel())));
}

TEST(FusedOps, MlpForwardAfterFirstLinearMatchesLayerwise)
{
    Rng wrng(13);
    nn::Mlp mlp(wrng, {8, 24, 16}, nn::Activation::Relu);
    Tensor x = randomTensor(14, 90, 8);
    Tensor pre = mlp.forwardFirstLinearOnly(x);
    Tensor fused = mlp.forwardAfterFirstLinear(pre);
    EXPECT_EQ(fused.maxAbsDiff(mlp.forward(x)), 0.0f);
}

// --- Workspace ---------------------------------------------------------

TEST(WorkspaceTest, SlotsGrowMonotonicallyWithStablePointers)
{
    Workspace ws;
    float *p1 = ws.floats(0, 100);
    EXPECT_GE(ws.capacity(0), 100u);
    float *p2 = ws.floats(0, 50); // smaller request: no realloc
    EXPECT_EQ(p1, p2);
    EXPECT_GE(ws.capacity(0), 100u);
    ws.floats(0, 400);
    EXPECT_GE(ws.capacity(0), 400u);
    float *p3 = ws.floats(0, 400);
    EXPECT_EQ(p3, ws.floats(0, 399));
    // Slots are independent.
    float *q = ws.floats(1, 10);
    EXPECT_NE(p3, q);
    EXPECT_THROW(ws.floats(Workspace::kNumSlots, 1),
                 mesorasi::UsageError);
}

TEST(WorkspaceTest, LocalIsPerThreadAndPersistent)
{
    float *main1 = Workspace::local().floats(3, 64);
    float *main2 = Workspace::local().floats(3, 64);
    EXPECT_EQ(main1, main2);
}

// --- Zero allocation ---------------------------------------------------

TEST(ZeroAlloc, FusedKernelsDoNotAllocate)
{
    ThreadPool::ScopedForceInline inline_guard;
    Tensor pft = randomTensor(21, 256, 32);
    Tensor w = randomTensor(22, 32, 24);
    Rng rng(23);
    std::vector<int32_t> rows = rng.sampleWithoutReplacement(256, 16);
    std::vector<float> dst(16 * 24);

    // Warm up (first call may fault pages, etc.), then count.
    gatherMaxReduceInto(dst.data(), pft, rows);
    maxReduceRowsInto(dst.data(), pft, 8, 16);
    matmulInto(dst.data(), 24, pft.row(0), 32, 16, w);

    AllocCounterScope counter;
    gatherMaxReduceInto(dst.data(), pft, rows);
    maxReduceRowsInto(dst.data(), pft, 8, 16);
    matmulInto(dst.data(), 24, pft.row(0), 32, 16, w);
    EXPECT_EQ(counter.count(), 0);
}

TEST(ZeroAlloc, MlpSteadyStateAllocatesOnlyTheOutputTensor)
{
    ThreadPool::ScopedForceInline inline_guard;
    Rng wrng(31);
    nn::Mlp mlp(wrng, {16, 32, 32, 24}, nn::Activation::Relu);
    Tensor x = randomTensor(32, 300, 16);

    Tensor warm = mlp.forward(x); // grows the workspace slots

    int64_t allocs;
    Tensor steady(0, 0);
    {
        AllocCounterScope counter;
        steady = mlp.forward(x);
        allocs = counter.count();
    }
    // The returned tensor's data vector is the only permitted
    // allocation; the intermediate activations live in the warmed
    // per-thread workspace.
    EXPECT_LE(allocs, 1);
    EXPECT_EQ(steady.maxAbsDiff(warm), 0.0f);
}

} // namespace
} // namespace mesorasi::tensor
