/**
 * @file
 * Unit tests for geometry: Point3, Aabb, PointCloud, shape generators,
 * and rigid transforms.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "geom/point_cloud.hpp"
#include "geom/shapes.hpp"

namespace mesorasi::geom {
namespace {

TEST(Point3, Arithmetic)
{
    Point3 a{1, 2, 3}, b{4, 5, 6};
    EXPECT_EQ(a + b, Point3(5, 7, 9));
    EXPECT_EQ(b - a, Point3(3, 3, 3));
    EXPECT_EQ(a * 2.0f, Point3(2, 4, 6));
    EXPECT_EQ(2.0f * a, Point3(2, 4, 6));
}

TEST(Point3, DotCrossNorm)
{
    Point3 x{1, 0, 0}, y{0, 1, 0};
    EXPECT_FLOAT_EQ(x.dot(y), 0.0f);
    EXPECT_EQ(x.cross(y), Point3(0, 0, 1));
    EXPECT_FLOAT_EQ(Point3(3, 4, 0).norm(), 5.0f);
    EXPECT_FLOAT_EQ(Point3(3, 4, 0).dist(Point3(0, 0, 0)), 5.0f);
}

TEST(Point3, NormalizedUnitLength)
{
    Point3 p{3, -4, 12};
    EXPECT_NEAR(p.normalized().norm(), 1.0f, 1e-6f);
    // Zero vector stays zero rather than producing NaN.
    EXPECT_EQ(Point3().normalized(), Point3());
}

TEST(Aabb, ExtendAndContains)
{
    Aabb box;
    EXPECT_TRUE(box.empty());
    box.extend({0, 0, 0});
    box.extend({1, 2, 3});
    EXPECT_FALSE(box.empty());
    EXPECT_TRUE(box.contains({0.5f, 1.0f, 1.5f}));
    EXPECT_FALSE(box.contains({2.0f, 0.0f, 0.0f}));
    EXPECT_EQ(box.extent(), Point3(1, 2, 3));
    EXPECT_FLOAT_EQ(box.maxExtent(), 3.0f);
}

TEST(Aabb, Dist2InsideIsZero)
{
    Aabb box;
    box.extend({-1, -1, -1});
    box.extend({1, 1, 1});
    EXPECT_FLOAT_EQ(box.dist2({0, 0, 0}), 0.0f);
    EXPECT_FLOAT_EQ(box.dist2({2, 0, 0}), 1.0f);
    EXPECT_FLOAT_EQ(box.dist2({2, 2, 0}), 2.0f);
}

TEST(PointCloud, AddAndSize)
{
    PointCloud c;
    EXPECT_TRUE(c.empty());
    c.add({1, 2, 3});
    c.add({4, 5, 6});
    EXPECT_EQ(c.size(), 2u);
    EXPECT_EQ(c[1], Point3(4, 5, 6));
    EXPECT_FALSE(c.hasLabels());
}

TEST(PointCloud, Labels)
{
    PointCloud c;
    c.add({0, 0, 0}, 1);
    c.add({1, 1, 1}, 2);
    EXPECT_TRUE(c.hasLabels());
    EXPECT_EQ(c.labels()[1], 2);
    // Mixing labelled and unlabelled points is rejected.
    EXPECT_THROW(c.add({2, 2, 2}), mesorasi::UsageError);
}

TEST(PointCloud, CentroidAndBounds)
{
    PointCloud c({{0, 0, 0}, {2, 2, 2}});
    EXPECT_EQ(c.centroid(), Point3(1, 1, 1));
    EXPECT_EQ(c.bounds().lo, Point3(0, 0, 0));
    EXPECT_EQ(c.bounds().hi, Point3(2, 2, 2));
}

TEST(PointCloud, CentroidOfEmptyThrows)
{
    PointCloud c;
    EXPECT_THROW(c.centroid(), mesorasi::UsageError);
}

TEST(PointCloud, NormalizeToUnitSphere)
{
    PointCloud c({{10, 0, 0}, {14, 0, 0}, {12, 3, 0}});
    c.normalizeToUnitSphere();
    float max_norm = 0.0f;
    Point3 centroid = c.centroid();
    for (size_t i = 0; i < c.size(); ++i)
        max_norm = std::max(max_norm, c[i].norm());
    EXPECT_NEAR(max_norm, 1.0f, 1e-5f);
    EXPECT_NEAR(centroid.norm(), 0.0f, 1e-5f);
}

TEST(PointCloud, SelectPreservesOrderAndLabels)
{
    PointCloud c;
    c.add({0, 0, 0}, 10);
    c.add({1, 0, 0}, 11);
    c.add({2, 0, 0}, 12);
    PointCloud s = c.select({2, 0});
    ASSERT_EQ(s.size(), 2u);
    EXPECT_EQ(s[0], Point3(2, 0, 0));
    EXPECT_EQ(s.labels()[0], 12);
    EXPECT_EQ(s.labels()[1], 10);
}

TEST(PointCloud, SelectRejectsBadIndex)
{
    PointCloud c({{0, 0, 0}});
    EXPECT_THROW(c.select({5}), mesorasi::UsageError);
}

TEST(PointCloud, AppendConcatenates)
{
    PointCloud a({{0, 0, 0}});
    PointCloud b({{1, 1, 1}, {2, 2, 2}});
    a.append(b);
    EXPECT_EQ(a.size(), 3u);
    EXPECT_EQ(a[2], Point3(2, 2, 2));
}

class ShapeSurfaceTest : public ::testing::Test
{
  protected:
    mesorasi::Rng rng{42};
    ShapeParams params{512, 0.0f, -1};
};

TEST_F(ShapeSurfaceTest, SpherePointsOnSurface)
{
    PointCloud c = makeSphere(rng, params, {1, 2, 3}, 2.0f);
    ASSERT_EQ(c.size(), 512u);
    for (size_t i = 0; i < c.size(); ++i)
        EXPECT_NEAR(c[i].dist({1, 2, 3}), 2.0f, 1e-4f);
}

TEST_F(ShapeSurfaceTest, BoxPointsOnFaces)
{
    Point3 half{0.5f, 1.0f, 1.5f};
    PointCloud c = makeBox(rng, params, {}, half);
    for (size_t i = 0; i < c.size(); ++i) {
        const Point3 &p = c[i];
        bool on_face = std::abs(std::abs(p.x) - half.x) < 1e-5f ||
                       std::abs(std::abs(p.y) - half.y) < 1e-5f ||
                       std::abs(std::abs(p.z) - half.z) < 1e-5f;
        EXPECT_TRUE(on_face);
        EXPECT_LE(std::abs(p.x), half.x + 1e-5f);
        EXPECT_LE(std::abs(p.y), half.y + 1e-5f);
        EXPECT_LE(std::abs(p.z), half.z + 1e-5f);
    }
}

TEST_F(ShapeSurfaceTest, CylinderWithinBounds)
{
    PointCloud c = makeCylinder(rng, params, {}, 0.5f, 2.0f);
    for (size_t i = 0; i < c.size(); ++i) {
        float r = std::sqrt(c[i].x * c[i].x + c[i].y * c[i].y);
        EXPECT_LE(r, 0.5f + 1e-5f);
        EXPECT_LE(std::abs(c[i].z), 1.0f + 1e-5f);
        // Either on the lateral surface or on a cap.
        bool lateral = std::abs(r - 0.5f) < 1e-4f;
        bool cap = std::abs(std::abs(c[i].z) - 1.0f) < 1e-4f;
        EXPECT_TRUE(lateral || cap);
    }
}

TEST_F(ShapeSurfaceTest, TorusTubeRadius)
{
    float major = 0.7f, minor = 0.2f;
    PointCloud c = makeTorus(rng, params, {}, major, minor);
    for (size_t i = 0; i < c.size(); ++i) {
        float ring = std::sqrt(c[i].x * c[i].x + c[i].y * c[i].y);
        float tube = std::sqrt((ring - major) * (ring - major) +
                               c[i].z * c[i].z);
        EXPECT_NEAR(tube, minor, 1e-4f);
    }
}

TEST_F(ShapeSurfaceTest, PlaneIsFlat)
{
    PointCloud c = makePlane(rng, params, {0, 0, 2}, 1.0f, 3.0f);
    for (size_t i = 0; i < c.size(); ++i) {
        EXPECT_NEAR(c[i].z, 2.0f, 1e-5f);
        EXPECT_LE(std::abs(c[i].x), 0.5f + 1e-5f);
        EXPECT_LE(std::abs(c[i].y), 1.5f + 1e-5f);
    }
}

TEST_F(ShapeSurfaceTest, ConeWithinEnvelope)
{
    PointCloud c = makeCone(rng, params, {}, 0.5f, 1.0f);
    for (size_t i = 0; i < c.size(); ++i) {
        float r = std::sqrt(c[i].x * c[i].x + c[i].y * c[i].y);
        float z = c[i].z + 0.5f; // base at z = -h/2
        EXPECT_GE(z, -1e-5f);
        EXPECT_LE(z, 1.0f + 1e-5f);
        // Radius shrinks linearly toward the apex.
        EXPECT_LE(r, 0.5f * (1.0f - z) + 1e-3f);
    }
}

TEST_F(ShapeSurfaceTest, CapsuleWithinEnvelope)
{
    PointCloud c = makeCapsule(rng, params, {}, 0.3f, 1.0f);
    for (size_t i = 0; i < c.size(); ++i) {
        float r = std::sqrt(c[i].x * c[i].x + c[i].y * c[i].y);
        EXPECT_LE(r, 0.3f + 1e-4f);
        EXPECT_LE(std::abs(c[i].z), 0.5f + 0.3f + 1e-4f);
    }
}

TEST_F(ShapeSurfaceTest, NoiseMovesPoints)
{
    ShapeParams noisy = params;
    noisy.noiseStddev = 0.05f;
    PointCloud c = makeSphere(rng, noisy, {}, 1.0f);
    int off_surface = 0;
    for (size_t i = 0; i < c.size(); ++i)
        if (std::abs(c[i].norm() - 1.0f) > 1e-4f)
            ++off_surface;
    EXPECT_GT(off_surface, 400); // nearly all perturbed
}

TEST_F(ShapeSurfaceTest, LabelsAttached)
{
    ShapeParams labelled = params;
    labelled.label = 5;
    PointCloud c = makeBlob(rng, labelled, {}, 0.2f);
    ASSERT_TRUE(c.hasLabels());
    for (int32_t l : c.labels())
        EXPECT_EQ(l, 5);
}

TEST(Transforms, RotateZPreservesRadiusAndZ)
{
    mesorasi::Rng rng(1);
    ShapeParams p{128, 0.0f, -1};
    PointCloud c = makeSphere(rng, p, {0.3f, -0.2f, 0.7f}, 1.0f);
    PointCloud orig = c;
    rotateZ(c, 1.234f);
    for (size_t i = 0; i < c.size(); ++i) {
        EXPECT_NEAR(c[i].z, orig[i].z, 1e-5f);
        float r0 = std::sqrt(orig[i].x * orig[i].x +
                             orig[i].y * orig[i].y);
        float r1 = std::sqrt(c[i].x * c[i].x + c[i].y * c[i].y);
        EXPECT_NEAR(r0, r1, 1e-4f);
    }
}

TEST(Transforms, ScaleAboutPivot)
{
    PointCloud c({{2, 0, 0}});
    scale(c, 2.0f, {1, 0, 0});
    EXPECT_EQ(c[0], Point3(3, 0, 0));
    EXPECT_THROW(scale(c, -1.0f), mesorasi::UsageError);
}

TEST(Transforms, Translate)
{
    PointCloud c({{1, 1, 1}});
    translate(c, {1, 2, 3});
    EXPECT_EQ(c[0], Point3(2, 3, 4));
}

TEST(Shapes, RejectBadParams)
{
    mesorasi::Rng rng(1);
    ShapeParams p{0, 0.0f, -1};
    EXPECT_THROW(makeSphere(rng, p), mesorasi::UsageError);
    ShapeParams ok{8, 0.0f, -1};
    EXPECT_THROW(makeTorus(rng, ok, {}, 0.1f, 0.5f),
                 mesorasi::UsageError); // minor >= major
}

} // namespace
} // namespace mesorasi::geom
