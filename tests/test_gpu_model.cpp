/**
 * @file
 * Tests for the analytic GPU cost model.
 */
#include <gtest/gtest.h>

#include "core/trace.hpp"
#include "hwsim/gpu_model.hpp"

namespace mesorasi::hwsim {
namespace {

GpuModel
gpu()
{
    return GpuModel(GpuConfig{}, DramConfig{});
}

TEST(Gpu, AllOpKindsCosted)
{
    GpuModel g = gpu();
    std::vector<core::OpTrace> ops = {
        core::makeMlpOp(1024, 3, 64, "mlp"),
        core::makeFcOp(1, 1024, 512, "fc"),
        core::makeSearchOp(512, 1024, 32, 3, "n"),
        core::makeAggregateOp(512, 32, 128, 1024, "a"),
        core::makeReduceOp(512, 32, 128, "r"),
        core::makeSamplingOp(1024, 512, false, "s"),
        core::makeInterpolateOp(2048, 128, 256, "i"),
        core::makeConcatOp(1024, 320, "c"),
        core::makeScatterOp(512, 32, 128, "sc"),
    };
    for (const auto &op : ops) {
        GpuCost c = g.cost(op);
        EXPECT_GT(c.timeMs, 0.0) << op.label;
        EXPECT_GT(c.energyMj, 0.0) << op.label;
    }
}

TEST(Gpu, LaunchOverheadIsFloor)
{
    GpuModel g = gpu();
    auto tiny = core::makeMlpOp(1, 1, 1, "tiny");
    GpuCost c = g.cost(tiny);
    EXPECT_GE(c.timeMs, GpuConfig{}.kernelLaunchUs * 1e-3);
}

TEST(Gpu, SearchScalesWithCandidates)
{
    GpuModel g = gpu();
    auto a = g.cost(core::makeSearchOp(512, 1024, 32, 3, "a"));
    auto b = g.cost(core::makeSearchOp(512, 2048, 32, 3, "b"));
    auto c = g.cost(core::makeSearchOp(512, 1024, 32, 64, "c"));
    EXPECT_GT(b.timeMs, 1.5 * a.timeMs);
    // Higher dimensionality adds distance-computation time, but the
    // per-candidate selection kernel dominates, so growth is mild.
    EXPECT_GT(c.timeMs, a.timeMs);
    EXPECT_LT(c.timeMs, 3.0 * a.timeMs);
}

TEST(Gpu, ExactKnnCostlierThanBallQuery)
{
    GpuModel g = gpu();
    auto knn = g.cost(core::makeSearchOp(512, 1024, 32, 3, "k", true));
    auto ball = g.cost(core::makeSearchOp(512, 1024, 32, 3, "b", false));
    EXPECT_GT(knn.timeMs, ball.timeMs);
}

TEST(Gpu, GatherSlowerWhenWorkingSetSpillsL1)
{
    GpuModel g = gpu();
    // Same bytes moved, different table sizes: 12 KB fits L1 (96 KB);
    // 512 KB does not (paper Sec. IV-C's PointNet++ example).
    auto small = core::makeAggregateOp(512, 32, 3, 1024, "small");
    auto large = core::makeAggregateOp(512, 32, 128, 1024, "large");
    GpuCost cs = g.cost(small);
    GpuCost cl = g.cost(large);
    // Per-byte time (net of the fixed launch overhead) is worse for
    // the large working set.
    double launch = GpuConfig{}.kernelLaunchUs * 1e-3;
    double per_byte_small =
        (cs.timeMs - launch) / (small.bytesRead + small.bytesWritten);
    double per_byte_large =
        (cl.timeMs - launch) / (large.bytesRead + large.bytesWritten);
    EXPECT_GT(per_byte_large, per_byte_small);
}

TEST(Gpu, MatmulComputeBoundForLargeDims)
{
    GpuModel g = gpu();
    auto big = core::makeMlpOp(16384, 256, 256, "big");
    GpuCost c = g.cost(big);
    double compute_ms = static_cast<double>(big.macs) /
                        (GpuConfig{}.peakGflops *
                         GpuConfig{}.matmulEfficiency * 1e6);
    EXPECT_NEAR(c.timeMs, compute_ms + GpuConfig{}.kernelLaunchUs * 1e-3,
                compute_ms * 0.01);
}

TEST(Gpu, EnergyIsPowerTimesTime)
{
    GpuModel g = gpu();
    auto op = core::makeMlpOp(4096, 64, 64, "e");
    GpuCost c = g.cost(op);
    EXPECT_NEAR(c.energyMj, c.timeMs * GpuConfig{}.busyPowerW, 1e-9);
}

TEST(Gpu, DramBytesReported)
{
    GpuModel g = gpu();
    auto op = core::makeAggregateOp(128, 16, 64, 512, "d");
    GpuCost c = g.cost(op);
    EXPECT_EQ(c.dramBytes, op.bytesRead + op.bytesWritten);
}

} // namespace
} // namespace mesorasi::hwsim
