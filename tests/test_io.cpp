/**
 * @file
 * Tests for point-cloud file I/O (XYZ and ascii PLY round trips).
 */
#include <gtest/gtest.h>

#include "common/check.hpp"

#include <sstream>

#include "common/rng.hpp"
#include "geom/io.hpp"
#include "geom/shapes.hpp"

namespace mesorasi::geom {
namespace {

PointCloud
sampleCloud(bool labelled)
{
    mesorasi::Rng rng(1);
    ShapeParams p{64, 0.0f, labelled ? 3 : -1};
    return makeSphere(rng, p, {0.5f, -1.0f, 2.0f}, 1.5f);
}

void
expectSameCloud(const PointCloud &a, const PointCloud &b)
{
    ASSERT_EQ(a.size(), b.size());
    ASSERT_EQ(a.hasLabels(), b.hasLabels());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_NEAR(a[i].x, b[i].x, 1e-4f);
        EXPECT_NEAR(a[i].y, b[i].y, 1e-4f);
        EXPECT_NEAR(a[i].z, b[i].z, 1e-4f);
        if (a.hasLabels())
            EXPECT_EQ(a.labels()[i], b.labels()[i]);
    }
}

TEST(Xyz, RoundTripUnlabelled)
{
    PointCloud c = sampleCloud(false);
    std::stringstream ss;
    writeXyz(ss, c);
    expectSameCloud(c, readXyz(ss));
}

TEST(Xyz, RoundTripLabelled)
{
    PointCloud c = sampleCloud(true);
    std::stringstream ss;
    writeXyz(ss, c);
    PointCloud back = readXyz(ss);
    ASSERT_TRUE(back.hasLabels());
    expectSameCloud(c, back);
}

TEST(Xyz, SkipsCommentsAndBlanks)
{
    std::stringstream ss("# header\n\n1 2 3\n# mid\n4 5 6\n");
    PointCloud c = readXyz(ss);
    ASSERT_EQ(c.size(), 2u);
    EXPECT_EQ(c[1], Point3(4, 5, 6));
}

TEST(Xyz, RejectsMalformedLine)
{
    std::stringstream ss("1 2\n");
    EXPECT_THROW(readXyz(ss), mesorasi::UsageError);
}

TEST(Ply, RoundTripUnlabelled)
{
    PointCloud c = sampleCloud(false);
    std::stringstream ss;
    writePly(ss, c);
    expectSameCloud(c, readPly(ss));
}

TEST(Ply, RoundTripLabelled)
{
    PointCloud c = sampleCloud(true);
    std::stringstream ss;
    writePly(ss, c);
    PointCloud back = readPly(ss);
    ASSERT_TRUE(back.hasLabels());
    expectSameCloud(c, back);
}

TEST(Ply, HeaderDeclaresVertexCountAndProps)
{
    PointCloud c = sampleCloud(true);
    std::stringstream ss;
    writePly(ss, c);
    std::string header = ss.str().substr(0, ss.str().find("end_header"));
    EXPECT_NE(header.find("element vertex 64"), std::string::npos);
    EXPECT_NE(header.find("property int label"), std::string::npos);
}

TEST(Ply, RejectsNonPly)
{
    std::stringstream ss("obj\n");
    EXPECT_THROW(readPly(ss), mesorasi::UsageError);
}

TEST(Ply, RejectsTruncatedBody)
{
    std::stringstream ss(
        "ply\nformat ascii 1.0\nelement vertex 3\n"
        "property float x\nproperty float y\nproperty float z\n"
        "end_header\n1 2 3\n");
    EXPECT_THROW(readPly(ss), mesorasi::UsageError);
}

TEST(Ply, RejectsBinaryFormat)
{
    std::stringstream ss(
        "ply\nformat binary_little_endian 1.0\nelement vertex 0\n"
        "property float x\nproperty float y\nproperty float z\n"
        "end_header\n");
    EXPECT_THROW(readPly(ss), mesorasi::UsageError);
}

TEST(IoFiles, FileRoundTrip)
{
    PointCloud c = sampleCloud(true);
    std::string path = ::testing::TempDir() + "meso_io_test.ply";
    writePlyFile(path, c);
    expectSameCloud(c, readPlyFile(path));
    std::string xyz = ::testing::TempDir() + "meso_io_test.xyz";
    writeXyzFile(xyz, c);
    expectSameCloud(c, readXyzFile(xyz));
}

TEST(IoFiles, MissingFileThrows)
{
    EXPECT_THROW(readXyzFile("/nonexistent/nope.xyz"),
                 mesorasi::UsageError);
}

} // namespace
} // namespace mesorasi::geom
