/**
 * @file
 * Tests for neighbor search: brute force reference, KD-tree and grid
 * equivalence (parameterized property sweeps), and the NIT structure.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "geom/shapes.hpp"
#include "neighbor/brute_force.hpp"
#include "neighbor/grid.hpp"
#include "neighbor/kdtree.hpp"
#include "neighbor/nit.hpp"
#include "neighbor/points_view.hpp"
#include "neighbor/search_backend.hpp"

namespace mesorasi::neighbor {
namespace {

using mesorasi::Rng;

/** Random D-dimensional rows for dimension-generic tests. */
std::vector<float>
randomRows(Rng &rng, int32_t n, int32_t dim)
{
    std::vector<float> data(static_cast<size_t>(n) * dim);
    for (auto &v : data)
        v = rng.uniform(-1.0f, 1.0f);
    return data;
}

TEST(PointsView, Dist2Matches)
{
    std::vector<float> data{0, 0, 0, 3, 4, 0};
    PointsView v(data.data(), 2, 3);
    EXPECT_FLOAT_EQ(v.dist2(0, 1), 25.0f);
    float q[3] = {0, 0, 2};
    EXPECT_FLOAT_EQ(v.dist2To(0, q), 4.0f);
}

TEST(Nit, PackedBytesMatchesPaperSizing)
{
    // Paper Sec. VI: a 64-neighbor entry is 98 bytes at 12-bit indices
    // ((1 + 64) * 12 bits = 780 bits -> 98 bytes).
    NeighborIndexTable nit(64);
    NitEntry e;
    e.centroid = 0;
    e.neighbors.assign(64, 1);
    nit.add(e);
    EXPECT_EQ(nit.packedBytes(), 98);
}

TEST(Nit, TotalAndMaxReferenced)
{
    NeighborIndexTable nit(4);
    nit.add({5, {1, 2, 3}});
    nit.add({9, {7}});
    EXPECT_EQ(nit.totalNeighbors(), 4);
    EXPECT_EQ(nit.maxReferencedIndex(), 9);
    EXPECT_EQ(nit.size(), 2);
}

TEST(Nit, RejectsOversizedEntry)
{
    NeighborIndexTable nit(2);
    EXPECT_THROW(nit.add({0, {1, 2, 3}}), mesorasi::UsageError);
}

TEST(BruteForce, KnnSelfIsFirstNeighbor)
{
    Rng rng(1);
    auto data = randomRows(rng, 50, 3);
    PointsView v(data.data(), 50, 3);
    auto nit = knnBruteForce(v, {10, 20}, 5);
    ASSERT_EQ(nit.size(), 2);
    // A point's nearest neighbor is itself (distance 0).
    EXPECT_EQ(nit[0].neighbors[0], 10);
    EXPECT_EQ(nit[1].neighbors[0], 20);
}

TEST(BruteForce, KnnOrderedByDistance)
{
    Rng rng(2);
    auto data = randomRows(rng, 80, 3);
    PointsView v(data.data(), 80, 3);
    auto nit = knnBruteForce(v, {0}, 10);
    for (size_t j = 1; j < nit[0].neighbors.size(); ++j)
        EXPECT_LE(v.dist2(0, nit[0].neighbors[j - 1]),
                  v.dist2(0, nit[0].neighbors[j]));
}

TEST(BruteForce, BallRespectsRadiusAndPads)
{
    Rng rng(3);
    auto data = randomRows(rng, 100, 3);
    PointsView v(data.data(), 100, 3);
    float r = 0.4f;
    auto nit = ballQueryBruteForce(v, {5}, r, 16);
    ASSERT_EQ(nit.size(), 1);
    EXPECT_EQ(static_cast<int32_t>(nit[0].neighbors.size()), 16);
    std::set<int32_t> uniq;
    for (int32_t n : nit[0].neighbors) {
        EXPECT_LE(v.dist2(5, n), r * r + 1e-6f);
        uniq.insert(n);
    }
    // Padding repeats the first in-ball point.
    EXPECT_LE(uniq.size(), nit[0].neighbors.size());
}

TEST(BruteForce, BallNoPadWhenDisabled)
{
    std::vector<float> data{0, 0, 0, 10, 0, 0};
    PointsView v(data.data(), 2, 3);
    auto nit = ballQueryBruteForce(v, {0}, 1.0f, 8, false);
    EXPECT_EQ(static_cast<int32_t>(nit[0].neighbors.size()), 1);
}

// --- KD-tree vs brute force property sweep ---------------------------

struct SweepParam
{
    int32_t n;
    int32_t dim;
    int32_t k;
};

class KdTreeSweep : public ::testing::TestWithParam<SweepParam>
{
};

TEST_P(KdTreeSweep, KnnMatchesBruteForce)
{
    auto [n, dim, k] = GetParam();
    Rng rng(1000 + n + dim + k);
    auto data = randomRows(rng, n, dim);
    PointsView v(data.data(), n, dim);
    auto tree = makeBackendByName("kdtree", v);

    std::vector<int32_t> queries;
    for (int32_t q = 0; q < n; q += std::max(1, n / 17))
        queries.push_back(q);

    auto ref = knnBruteForce(v, queries, k);
    auto got = tree->knnTable(queries, k);
    ASSERT_EQ(ref.size(), got.size());
    for (int32_t i = 0; i < ref.size(); ++i) {
        // Distances must match exactly (sets may differ under ties, so
        // compare distances, which is the semantic contract).
        ASSERT_EQ(ref[i].neighbors.size(), got[i].neighbors.size());
        for (size_t j = 0; j < ref[i].neighbors.size(); ++j)
            EXPECT_FLOAT_EQ(v.dist2(queries[i], ref[i].neighbors[j]),
                            v.dist2(queries[i], got[i].neighbors[j]))
                << "n=" << n << " dim=" << dim << " k=" << k;
    }
}

TEST_P(KdTreeSweep, RadiusMatchesBruteForce)
{
    auto [n, dim, k] = GetParam();
    Rng rng(2000 + n + dim + k);
    auto data = randomRows(rng, n, dim);
    PointsView v(data.data(), n, dim);
    KdTree tree(v, 8);
    float radius = 0.5f;

    for (int32_t q = 0; q < n; q += std::max(1, n / 7)) {
        auto got = tree.radius(v.row(q), radius);
        std::set<int32_t> expected;
        for (int32_t i = 0; i < n; ++i)
            if (v.dist2(q, i) <= radius * radius)
                expected.insert(i);
        EXPECT_EQ(std::set<int32_t>(got.begin(), got.end()), expected);
        // Nearest-first ordering.
        for (size_t j = 1; j < got.size(); ++j)
            EXPECT_LE(v.dist2(q, got[j - 1]), v.dist2(q, got[j]));
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, KdTreeSweep,
    ::testing::Values(SweepParam{32, 3, 4}, SweepParam{100, 3, 8},
                      SweepParam{257, 3, 16}, SweepParam{128, 2, 8},
                      SweepParam{128, 8, 8}, SweepParam{200, 16, 10},
                      SweepParam{64, 64, 12}, SweepParam{500, 3, 32},
                      SweepParam{41, 5, 41}));

TEST(KdTree, BallTablePadsLikeBruteForce)
{
    Rng rng(7);
    auto data = randomRows(rng, 120, 3);
    PointsView v(data.data(), 120, 3);
    auto tree = makeBackendByName("kdtree", v);
    auto a = tree->ballTable({3, 60}, 0.3f, 12);
    auto b = ballQueryBruteForce(v, {3, 60}, 0.3f, 12);
    ASSERT_EQ(a.size(), b.size());
    for (int32_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].neighbors.size(), b[i].neighbors.size());
}

TEST(KdTree, RejectsBadQueries)
{
    Rng rng(8);
    auto data = randomRows(rng, 10, 3);
    PointsView v(data.data(), 10, 3);
    KdTree tree(v);
    EXPECT_THROW(tree.knn(v.row(0), 11), mesorasi::UsageError);
    auto backend = makeBackendByName("kdtree", v);
    EXPECT_THROW(backend->knnTable({10}, 2), mesorasi::UsageError);
}

TEST(Grid, RadiusMatchesBruteForce)
{
    Rng rng(9);
    geom::ShapeParams p{300, 0.0f, -1};
    geom::PointCloud cloud = geom::makeSphere(rng, p, {}, 1.0f);
    UniformGrid grid(cloud, 0.3f);

    FlatPoints flat(cloud);
    PointsView v = flat.view();
    float radius = 0.3f;
    for (int32_t q = 0; q < 300; q += 37) {
        auto got = grid.radius(q, radius);
        std::set<int32_t> expected;
        for (int32_t i = 0; i < 300; ++i)
            if (v.dist2(q, i) <= radius * radius)
                expected.insert(i);
        EXPECT_EQ(std::set<int32_t>(got.begin(), got.end()), expected);
    }
}

TEST(Grid, BallTableMatchesKdTree)
{
    Rng rng(10);
    geom::ShapeParams p{200, 0.0f, -1};
    geom::PointCloud cloud = geom::makeTorus(rng, p, {}, 0.7f, 0.2f);
    UniformGrid grid(cloud, 0.25f);
    FlatPoints flat(cloud);
    auto tree = makeBackendByName("kdtree", flat.view());

    std::vector<int32_t> queries{0, 50, 100, 150, 199};
    auto a = grid.ballTable(queries, 0.25f, 8);
    auto b = tree->ballTable(queries, 0.25f, 8);
    ASSERT_EQ(a.size(), b.size());
    for (int32_t i = 0; i < a.size(); ++i) {
        // Same group sizes and same nearest member.
        EXPECT_EQ(a[i].neighbors.size(), b[i].neighbors.size());
        EXPECT_EQ(a[i].neighbors[0], b[i].neighbors[0]);
    }
}

TEST(Grid, CellCountReasonable)
{
    Rng rng(11);
    geom::ShapeParams p{500, 0.0f, -1};
    geom::PointCloud cloud = geom::makeBox(rng, p);
    UniformGrid grid(cloud, 0.2f);
    EXPECT_GT(grid.numCells(), 10u);
    EXPECT_LE(grid.numCells(), 500u);
}

} // namespace
} // namespace mesorasi::neighbor
