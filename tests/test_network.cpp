/**
 * @file
 * Integration tests: every zoo network runs end-to-end under all three
 * pipelines with consistent shapes, traces, and NITs.
 */
#include <gtest/gtest.h>

#include "common/check.hpp"

#include "common/rng.hpp"
#include "core/networks.hpp"
#include "geom/datasets.hpp"

namespace mesorasi::core {
namespace {

geom::PointCloud
inputFor(const NetworkConfig &cfg, uint64_t seed = 99)
{
    if (cfg.task == Task::Segmentation) {
        geom::ShapeNetSim sim(seed, cfg.numInputPoints);
        return sim.sample(0).cloud;
    }
    geom::ModelNetSim sim(seed, cfg.numInputPoints);
    return sim.sample(0).cloud;
}

TEST(Zoo, SevenNetworksConfigured)
{
    auto nets = zoo::allNetworks();
    ASSERT_EQ(nets.size(), 7u);
    for (const auto &n : nets)
        EXPECT_NO_THROW(n.validate()) << n.name;
}

TEST(Zoo, CharacterizationSubsetIsFive)
{
    auto nets = zoo::characterizationNetworks();
    ASSERT_EQ(nets.size(), 5u);
    EXPECT_EQ(nets[0].name, "PointNet++ (c)");
    EXPECT_EQ(nets[4].name, "F-PointNet");
}

TEST(NetworkConfig, ValidationCatchesErrors)
{
    NetworkConfig bad = zoo::pointnetppClassification();
    bad.modules.clear();
    EXPECT_THROW(bad.validate(), mesorasi::UsageError);

    NetworkConfig bad2 = zoo::pointnetppSegmentation();
    bad2.interpModules.pop_back();
    EXPECT_THROW(bad2.validate(), mesorasi::UsageError);

    NetworkConfig bad3 = zoo::fPointNet();
    bad3.stage2Modules.clear();
    EXPECT_THROW(bad3.validate(), mesorasi::UsageError);
}

class NetworkRun
    : public ::testing::TestWithParam<std::tuple<int, PipelineKind>>
{
};

TEST_P(NetworkRun, EndToEndProducesLogitsAndTrace)
{
    auto [net_idx, kind] = GetParam();
    NetworkConfig cfg = zoo::allNetworks()[net_idx];
    // Shrink inputs for test speed while keeping the structure intact.
    NetworkExecutor exec(cfg, /*weightSeed=*/1);
    geom::PointCloud cloud = inputFor(cfg);
    RunResult r = exec.run(cloud, kind, /*runSeed=*/7);

    if (cfg.task == Task::Classification) {
        EXPECT_EQ(r.logits.rows(), 1);
        EXPECT_EQ(r.logits.cols(), cfg.numClasses);
    } else if (cfg.task == Task::Segmentation) {
        EXPECT_EQ(r.logits.rows(), cfg.numInputPoints);
        EXPECT_EQ(r.logits.cols(), cfg.numClasses);
    } else {
        EXPECT_EQ(r.logits.rows(), 1);
        EXPECT_EQ(r.logits.cols(), cfg.stage2Outputs);
    }

    // NITs and IOs align; every aggregating trace module points at a
    // valid table.
    EXPECT_EQ(r.nits.size(), r.ios.size());
    for (const auto &m : r.trace.modules) {
        if (m.aggTableIndex >= 0) {
            ASSERT_LT(static_cast<size_t>(m.aggTableIndex),
                      r.nits.size());
        }
    }
    EXPECT_GT(r.trace.totalMacs(), 0);
}

std::string
runName(const ::testing::TestParamInfo<std::tuple<int, PipelineKind>>
            &info)
{
    static const char *nets[] = {"PnppC",     "PnppS",  "DgcnnC",
                                 "DgcnnS",    "FPointNet", "Ldgcnn",
                                 "DensePoint"};
    static const char *kinds[] = {"Original", "Delayed", "Ltd"};
    return std::string(nets[std::get<0>(info.param)]) + "_" +
           kinds[static_cast<int>(std::get<1>(info.param))];
}

INSTANTIATE_TEST_SUITE_P(
    AllNetsAllPipelines, NetworkRun,
    ::testing::Combine(::testing::Range(0, 7),
                       ::testing::Values(PipelineKind::Original,
                                         PipelineKind::Delayed,
                                         PipelineKind::LtdDelayed)),
    runName);

TEST(Network, DelayedReducesFeatureMacsAcrossZoo)
{
    for (const auto &cfg : zoo::allNetworks()) {
        NetworkExecutor exec(cfg, 1);
        NetworkTrace orig = exec.analyticTrace(PipelineKind::Original,
                                               cfg.numInputPoints);
        NetworkTrace del = exec.analyticTrace(PipelineKind::Delayed,
                                              cfg.numInputPoints);
        EXPECT_LT(del.macs(Phase::Feature), orig.macs(Phase::Feature))
            << cfg.name;
    }
}

TEST(Network, AnalyticTraceScalesWithInput)
{
    NetworkConfig cfg = zoo::pointnetppClassification();
    NetworkExecutor exec(cfg, 1);
    NetworkTrace small = exec.analyticTrace(PipelineKind::Original, 1024);
    NetworkTrace big = exec.analyticTrace(PipelineKind::Original, 4096);
    // MLP cost grows with the point count (roughly linearly).
    EXPECT_GT(big.macs(Phase::Feature), 2 * small.macs(Phase::Feature));
}

TEST(Network, AnalyticIosChainPointCounts)
{
    NetworkConfig cfg = zoo::pointnetppClassification();
    NetworkExecutor exec(cfg, 1);
    auto ios = exec.analyticIos(1024);
    ASSERT_EQ(ios.size(), 3u);
    EXPECT_EQ(ios[0].nIn, 1024);
    EXPECT_EQ(ios[0].nOut, 512);
    EXPECT_EQ(ios[1].nIn, 512);
    EXPECT_EQ(ios[1].nOut, 128);
    EXPECT_EQ(ios[2].nOut, 1); // global
    // Scaled input: centroid counts scale proportionally.
    auto big = exec.analyticIos(2048);
    EXPECT_EQ(big[0].nOut, 1024);
}

TEST(Network, RejectsWrongInputSize)
{
    NetworkConfig cfg = zoo::pointnetppClassification();
    NetworkExecutor exec(cfg, 1);
    geom::ModelNetSim sim(1, 256);
    EXPECT_THROW(exec.run(sim.sample(0).cloud, PipelineKind::Original),
                 mesorasi::UsageError);
}

TEST(Network, LinkedInputsGrowModuleInDims)
{
    NetworkConfig cfg = zoo::ldgcnn();
    NetworkExecutor exec(cfg, 1);
    auto ios = exec.analyticIos(cfg.numInputPoints);
    // Module input dims: 3, 3+64, 3+64+64, 3+64+64+64.
    ASSERT_EQ(ios.size(), 4u);
    EXPECT_EQ(ios[0].mIn, 3);
    EXPECT_EQ(ios[1].mIn, 67);
    EXPECT_EQ(ios[2].mIn, 131);
    EXPECT_EQ(ios[3].mIn, 195);
}

TEST(Network, DgcnnSearchesInFeatureSpace)
{
    NetworkConfig cfg = zoo::dgcnnClassification();
    NetworkExecutor exec(cfg, 1);
    auto ios = exec.analyticIos(cfg.numInputPoints);
    EXPECT_EQ(ios[0].searchDim, 3);   // first module: features == coords
    EXPECT_EQ(ios[1].searchDim, 64);  // then module outputs
    EXPECT_EQ(ios[2].searchDim, 64);
    EXPECT_EQ(ios[3].searchDim, 128);
}

TEST(Network, SegmentationDecoderRestoresPointCount)
{
    NetworkConfig cfg = zoo::pointnetppSegmentation();
    NetworkExecutor exec(cfg, 1);
    geom::PointCloud cloud = inputFor(cfg);
    RunResult r = exec.run(cloud, PipelineKind::Delayed, 3);
    EXPECT_EQ(r.logits.rows(), cfg.numInputPoints);
}

TEST(Network, SamePipelineSameSeedIsDeterministic)
{
    NetworkConfig cfg = zoo::pointnetppClassification();
    NetworkExecutor exec(cfg, 5);
    geom::PointCloud cloud = inputFor(cfg);
    RunResult a = exec.run(cloud, PipelineKind::Delayed, 11);
    RunResult b = exec.run(cloud, PipelineKind::Delayed, 11);
    EXPECT_TRUE(a.logits.approxEqual(b.logits, 0.0f));
}

TEST(Network, FPointNetEmitsStage2Nits)
{
    NetworkConfig cfg = zoo::fPointNet();
    NetworkExecutor exec(cfg, 1);
    geom::KittiSim sim(7);
    auto frame = sim.frame(3, 1, 1);
    auto frustums = sim.frustums(frame, cfg.numInputPoints);
    ASSERT_FALSE(frustums.empty());
    RunResult r = exec.run(frustums[0], PipelineKind::Delayed, 13);
    // 3 encoder modules + 2 stage-2 branches.
    EXPECT_EQ(r.nits.size(), 5u);
}

} // namespace
} // namespace mesorasi::core
