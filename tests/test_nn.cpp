/**
 * @file
 * Tests for the NN layers and the hoisting forward variants the
 * pipelines rely on.
 */
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "nn/mlp.hpp"
#include "tensor/init.hpp"
#include "tensor/ops.hpp"

namespace mesorasi::nn {
namespace {

using mesorasi::Rng;
using tensor::Tensor;

TEST(Linear, ShapesAndForward)
{
    Rng rng(1);
    Linear l(rng, 3, 5, Activation::None);
    Tensor x = tensor::uniform(rng, 4, 3, -1, 1);
    Tensor y = l.forward(x);
    EXPECT_EQ(y.rows(), 4);
    EXPECT_EQ(y.cols(), 5);
    EXPECT_EQ(l.inDim(), 3);
    EXPECT_EQ(l.outDim(), 5);
}

TEST(Linear, ReluActivationApplied)
{
    Tensor w(1, 2, {1.0f, -1.0f});
    Tensor b(1, 2, {0.0f, 0.0f});
    Linear l(w, b, Activation::Relu);
    Tensor x(1, 1, {2.0f});
    Tensor y = l.forward(x);
    EXPECT_FLOAT_EQ(y(0, 0), 2.0f);
    EXPECT_FLOAT_EQ(y(0, 1), 0.0f); // -2 clipped
}

TEST(Linear, LinearOnlySkipsActivation)
{
    Tensor w(1, 1, {-1.0f});
    Linear l(w, Tensor(), Activation::Relu);
    Tensor x(1, 1, {3.0f});
    EXPECT_FLOAT_EQ(l.forward(x)(0, 0), 0.0f);
    EXPECT_FLOAT_EQ(l.forwardLinearOnly(x)(0, 0), -3.0f);
    EXPECT_FALSE(l.hasBias());
}

TEST(Linear, BiasShapeValidated)
{
    Tensor w(2, 3);
    EXPECT_THROW(Linear(w, Tensor(1, 2), Activation::None),
                 mesorasi::UsageError);
}

TEST(Linear, MacsAndParamBytes)
{
    Rng rng(2);
    Linear l(rng, 8, 16);
    EXPECT_EQ(l.macs(10), 10 * 8 * 16);
    EXPECT_EQ(l.paramBytes(), (8 * 16 + 16) * 4);
}

TEST(Mlp, DimsChain)
{
    Rng rng(3);
    Mlp mlp(rng, {3, 64, 64, 128});
    EXPECT_EQ(mlp.numLayers(), 3u);
    EXPECT_EQ(mlp.inDim(), 3);
    EXPECT_EQ(mlp.outDim(), 128);
    std::vector<int32_t> widths{64, 64, 128};
    EXPECT_EQ(mlp.layerWidths(), widths);
}

TEST(Mlp, ForwardShape)
{
    Rng rng(4);
    Mlp mlp(rng, {3, 8, 16});
    Tensor x = tensor::uniform(rng, 5, 3, -1, 1);
    Tensor y = mlp.forward(x);
    EXPECT_EQ(y.rows(), 5);
    EXPECT_EQ(y.cols(), 16);
}

TEST(Mlp, AddLayerValidatesChain)
{
    Rng rng(5);
    Mlp mlp;
    mlp.addLayer(Linear(rng, 3, 8));
    EXPECT_THROW(mlp.addLayer(Linear(rng, 9, 4)), mesorasi::UsageError);
}

TEST(Mlp, MacsSumAcrossLayers)
{
    Rng rng(6);
    Mlp mlp(rng, {3, 8, 16});
    EXPECT_EQ(mlp.macs(10), 10 * (3 * 8 + 8 * 16));
}

TEST(Mlp, HoistedForwardsCompose)
{
    // forwardAfterFirstLinear(forwardFirstLinearOnly(x)) == forward(x):
    // the Ltd-Mesorasi split must reproduce the plain forward exactly.
    Rng rng(7);
    Mlp mlp(rng, {4, 12, 6});
    Tensor x = tensor::uniform(rng, 9, 4, -1, 1);
    Tensor direct = mlp.forward(x);
    Tensor split = mlp.forwardAfterFirstLinear(
        mlp.forwardFirstLinearOnly(x));
    EXPECT_TRUE(direct.approxEqual(split, 1e-5f));
}

TEST(Mlp, FirstLinearIsLinear)
{
    // The hoisted product must distribute over subtraction exactly.
    Rng rng(8);
    Mlp mlp(rng, {4, 12, 6});
    Tensor a = tensor::uniform(rng, 3, 4, -1, 1);
    Tensor b = tensor::uniform(rng, 3, 4, -1, 1);
    Tensor diff(3, 4);
    for (int r = 0; r < 3; ++r)
        for (int c = 0; c < 4; ++c)
            diff(r, c) = a(r, c) - b(r, c);
    Tensor lhs = mlp.forwardFirstLinearOnly(diff);
    Tensor fa = mlp.forwardFirstLinearOnly(a);
    Tensor fb = mlp.forwardFirstLinearOnly(b);
    Tensor rhs(3, fa.cols());
    for (int r = 0; r < 3; ++r)
        for (int c = 0; c < fa.cols(); ++c)
            rhs(r, c) = fa(r, c) - fb(r, c);
    EXPECT_TRUE(lhs.approxEqual(rhs, 1e-5f));
}

TEST(Mlp, IdentityActivationMlpIsLinear)
{
    // With no nonlinearity the whole MLP distributes over subtraction —
    // the limit case in which delayed-aggregation is exact (Eq. 3).
    Rng rng(9);
    Mlp mlp(rng, {4, 8, 5}, Activation::None, /*useBias=*/false);
    Tensor a = tensor::uniform(rng, 2, 4, -1, 1);
    Tensor b = tensor::uniform(rng, 2, 4, -1, 1);
    Tensor diff(2, 4);
    for (int r = 0; r < 2; ++r)
        for (int c = 0; c < 4; ++c)
            diff(r, c) = a(r, c) - b(r, c);
    Tensor lhs = mlp.forward(diff);
    Tensor fa = mlp.forward(a);
    Tensor fb = mlp.forward(b);
    Tensor rhs(2, fa.cols());
    for (int r = 0; r < 2; ++r)
        for (int c = 0; c < fa.cols(); ++c)
            rhs(r, c) = fa(r, c) - fb(r, c);
    EXPECT_TRUE(lhs.approxEqual(rhs, 1e-5f));
}

TEST(Mlp, EmptyMlpRejected)
{
    Mlp mlp;
    Tensor x(1, 1);
    EXPECT_THROW(mlp.forward(x), mesorasi::UsageError);
    Rng rng(1);
    EXPECT_THROW(Mlp(rng, {3}), mesorasi::UsageError);
}

TEST(Mlp, ParamBytesPositive)
{
    Rng rng(10);
    Mlp mlp(rng, {3, 64, 128});
    EXPECT_EQ(mlp.paramBytes(),
              (3 * 64 + 64) * 4 + (64 * 128 + 128) * 4);
}

} // namespace
} // namespace mesorasi::nn
