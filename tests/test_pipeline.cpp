/**
 * @file
 * Property tests for the three execution pipelines — the heart of the
 * reproduction. Verifies the paper's distributivity claims (Sec. IV-A):
 *
 *  1. With identity activations, delayed == original EXACTLY.
 *  2. Ltd-delayed (hoisting only the first, linear, matrix product) is
 *     exactly equal to the original for Difference aggregation.
 *  3. Single-layer EdgeConv (ConcatCentroidDifference) is exact under
 *     the full delayed form because ReLU commutes with max.
 *  4. Multi-layer ReLU MLPs make the delayed form approximate, with
 *     bounded divergence.
 *  5. Trace invariants: delayed always has fewer MLP MACs than original
 *     whenever Nin < Nout * K.
 */
#include <gtest/gtest.h>

#include "common/check.hpp"

#include <cmath>

#include "common/rng.hpp"
#include "core/pipeline.hpp"
#include "geom/shapes.hpp"
#include "tensor/ops.hpp"

namespace mesorasi::core {
namespace {

using mesorasi::Rng;
using tensor::Tensor;

ModuleState
makeState(int32_t n, uint64_t seed)
{
    Rng rng(seed);
    geom::ShapeParams p{n, 0.0f, -1};
    geom::PointCloud cloud = geom::makeTorus(rng, p, {}, 0.7f, 0.25f);
    ModuleState s;
    s.coords = Tensor(n, 3);
    for (int32_t i = 0; i < n; ++i) {
        s.coords(i, 0) = cloud[i].x;
        s.coords(i, 1) = cloud[i].y;
        s.coords(i, 2) = cloud[i].z;
    }
    s.features = s.coords;
    return s;
}

ModuleConfig
diffModule(std::vector<int32_t> widths, int32_t centroids = 64,
           int32_t k = 8)
{
    ModuleConfig m;
    m.name = "m";
    m.numCentroids = centroids;
    m.k = k;
    m.search = SearchKind::Knn;
    m.space = SearchSpace::Coords;
    m.sampling = SamplingKind::Random;
    m.aggregation = AggregationKind::Difference;
    m.mlpWidths = std::move(widths);
    return m;
}

TEST(Pipeline, IdentityActivationDelayedIsExact)
{
    Rng wrng(1);
    ModuleExecutor ex(diffModule({16, 24}), 3, wrng,
                      nn::Activation::None);
    ModuleState in = makeState(256, 2);
    Rng s1(42), s2(42);
    ModuleResult orig = ex.run(in, PipelineKind::Original, s1);
    ModuleResult del = ex.run(in, PipelineKind::Delayed, s2);
    // Bias terms cancel in the difference only without bias; with
    // identity activation the MLP is affine: MLP(a-b) = MLP(a)-MLP(b)
    // + const. Our layers carry zero-initialized biases, so the
    // distribution is exact.
    EXPECT_LT(orig.out.features.maxAbsDiff(del.out.features), 1e-4f);
}

TEST(Pipeline, LtdDelayedExactlyMatchesOriginal)
{
    // Hoisting only the first matrix product is precise (Sec. VII-C).
    Rng wrng(3);
    ModuleExecutor ex(diffModule({16, 24, 32}), 3, wrng,
                      nn::Activation::Relu);
    ModuleState in = makeState(200, 4);
    Rng s1(7), s2(7);
    ModuleResult orig = ex.run(in, PipelineKind::Original, s1);
    ModuleResult ltd = ex.run(in, PipelineKind::LtdDelayed, s2);
    EXPECT_LT(orig.out.features.maxAbsDiff(ltd.out.features), 1e-4f);
}

TEST(Pipeline, SingleLayerEdgeConvDelayedIsExact)
{
    // ReLU commutes with max, so one-layer concat EdgeConv delays
    // exactly — consistent with the paper's observation that DGCNN (c),
    // LDGCNN, and DensePoint behave identically under Ltd and full
    // delayed-aggregation.
    ModuleConfig m;
    m.name = "ec";
    m.numCentroids = 0;
    m.k = 10;
    m.search = SearchKind::Knn;
    m.space = SearchSpace::Features;
    m.sampling = SamplingKind::All;
    m.aggregation = AggregationKind::ConcatCentroidDifference;
    m.mlpWidths = {24};

    Rng wrng(5);
    ModuleExecutor ex(m, 3, wrng, nn::Activation::Relu);
    ModuleState in = makeState(128, 6);
    Rng s1(9), s2(9);
    ModuleResult orig = ex.run(in, PipelineKind::Original, s1);
    ModuleResult del = ex.run(in, PipelineKind::Delayed, s2);
    EXPECT_LT(orig.out.features.maxAbsDiff(del.out.features), 1e-4f);
}

TEST(Pipeline, MultiLayerReluDelayedIsApproximate)
{
    Rng wrng(7);
    ModuleExecutor ex(diffModule({16, 24}), 3, wrng,
                      nn::Activation::Relu);
    ModuleState in = makeState(256, 8);
    Rng s1(11), s2(11);
    ModuleResult orig = ex.run(in, PipelineKind::Original, s1);
    ModuleResult del = ex.run(in, PipelineKind::Delayed, s2);
    float diff = orig.out.features.maxAbsDiff(del.out.features);
    // Genuinely approximate (not identical) ...
    EXPECT_GT(diff, 1e-6f);
    // ... but bounded relative to the signal magnitude.
    float scale = orig.out.features.frobeniusNorm() /
                  std::sqrt(static_cast<float>(
                      orig.out.features.numel()));
    EXPECT_LT(diff, 20.0f * scale);
}

TEST(Pipeline, GlobalModuleIdenticalUnderAllPipelines)
{
    ModuleConfig m;
    m.name = "global";
    m.search = SearchKind::Global;
    m.mlpWidths = {16, 32};
    Rng wrng(9);
    ModuleExecutor ex(m, 3, wrng);
    ModuleState in = makeState(64, 10);
    Rng s1(1), s2(1), s3(1);
    ModuleResult a = ex.run(in, PipelineKind::Original, s1);
    ModuleResult b = ex.run(in, PipelineKind::Delayed, s2);
    ModuleResult c = ex.run(in, PipelineKind::LtdDelayed, s3);
    EXPECT_LT(a.out.features.maxAbsDiff(b.out.features), 1e-6f);
    EXPECT_LT(a.out.features.maxAbsDiff(c.out.features), 1e-6f);
    EXPECT_EQ(a.out.features.rows(), 1);
    EXPECT_EQ(a.out.features.cols(), 32);
}

TEST(Pipeline, OutputShapesMatchConfig)
{
    Rng wrng(11);
    ModuleExecutor ex(diffModule({16, 24}, 32, 6), 3, wrng);
    ModuleState in = makeState(100, 12);
    Rng s(2);
    ModuleResult r = ex.run(in, PipelineKind::Delayed, s);
    EXPECT_EQ(r.out.features.rows(), 32);
    EXPECT_EQ(r.out.features.cols(), 24);
    EXPECT_EQ(r.out.coords.rows(), 32);
    EXPECT_EQ(r.nit.size(), 32);
    EXPECT_EQ(static_cast<int32_t>(r.centroidIdx.size()), 32);
    EXPECT_EQ(r.io.nIn, 100);
    EXPECT_EQ(r.io.nOut, 32);
    EXPECT_EQ(r.io.k, 6);
    EXPECT_EQ(r.io.mOut, 24);
}

TEST(Pipeline, OutputCoordsAreCentroidCoords)
{
    Rng wrng(13);
    ModuleExecutor ex(diffModule({8}, 16, 4), 3, wrng);
    ModuleState in = makeState(64, 14);
    Rng s(3);
    ModuleResult r = ex.run(in, PipelineKind::Original, s);
    for (int32_t i = 0; i < 16; ++i)
        for (int32_t d = 0; d < 3; ++d)
            EXPECT_FLOAT_EQ(r.out.coords(i, d),
                            in.coords(r.centroidIdx[i], d));
}

TEST(Pipeline, SameSamplerSeedSameCentroids)
{
    Rng wrng(15);
    ModuleExecutor ex(diffModule({8}, 16, 4), 3, wrng);
    ModuleState in = makeState(64, 16);
    Rng s1(5), s2(5);
    ModuleResult a = ex.run(in, PipelineKind::Original, s1);
    ModuleResult b = ex.run(in, PipelineKind::Delayed, s2);
    EXPECT_EQ(a.centroidIdx, b.centroidIdx);
}

TEST(Pipeline, BallSearchRespectsRadius)
{
    ModuleConfig m = diffModule({8}, 16, 12);
    m.search = SearchKind::Ball;
    m.radius = 0.3f;
    Rng wrng(17);
    ModuleExecutor ex(m, 3, wrng);
    ModuleState in = makeState(128, 18);
    Rng s(6);
    ModuleResult r = ex.run(in, PipelineKind::Delayed, s);
    for (const auto &entry : r.nit.entries()) {
        for (int32_t n : entry.neighbors) {
            float d2 = 0;
            for (int32_t d = 0; d < 3; ++d) {
                float diff = in.coords(entry.centroid, d) -
                             in.coords(n, d);
                d2 += diff * diff;
            }
            EXPECT_LE(d2, 0.3f * 0.3f + 1e-5f);
        }
    }
}

TEST(Pipeline, FeatureSpaceSearchUsesFeatures)
{
    // Verify the search dimensionality follows the configured space:
    // coordinate-space search is always 3-D, feature-space search uses
    // the current feature dimension (DGCNN's dynamic graph).
    ModuleConfig m = diffModule({8});
    m.space = SearchSpace::Features;
    Rng wrng(19);
    ModuleExecutor ex(m, 3, wrng);
    EXPECT_EQ(ex.analyticIo(100, 3).searchDim, 3);
    ModuleExecutor ex2(diffModule({8}), 16, wrng);
    ModuleConfig m2 = diffModule({8});
    m2.space = SearchSpace::Features;
    ModuleExecutor ex3(m2, 16, wrng);
    EXPECT_EQ(ex3.analyticIo(100, 16).searchDim, 16);
    EXPECT_EQ(ex2.analyticIo(100, 16).searchDim, 3);
}

TEST(Pipeline, LtdConcatAdvancesSamplerRngOnce)
{
    // runLtd delegates concat modules to runDelayed; the delegation must
    // happen BEFORE the prologue, or sampling + search run twice and the
    // sampler RNG advances twice, desynchronizing every downstream
    // module between Ltd and Delayed runs.
    ModuleConfig m;
    m.name = "ec";
    m.numCentroids = 32; // random subset: consumes sampler RNG draws
    m.k = 6;
    m.search = SearchKind::Knn;
    m.space = SearchSpace::Features;
    m.sampling = SamplingKind::Random;
    m.aggregation = AggregationKind::ConcatCentroidDifference;
    m.mlpWidths = {16};

    Rng wrng(41);
    ModuleExecutor ex(m, 3, wrng, nn::Activation::Relu);
    ModuleState in = makeState(128, 42);
    Rng sLtd(77), sDel(77);
    ModuleResult ltd = ex.run(in, PipelineKind::LtdDelayed, sLtd);
    ModuleResult del = ex.run(in, PipelineKind::Delayed, sDel);
    EXPECT_EQ(ltd.centroidIdx, del.centroidIdx);
    EXPECT_EQ(ltd.out.features.maxAbsDiff(del.out.features), 0.0f);
    // The streams stay synchronized after the module executes.
    EXPECT_EQ(sLtd.uniformInt(0, 1 << 30), sDel.uniformInt(0, 1 << 30));
}

TEST(Pipeline, SamplingAllWithFewerCentroidsIsRejected)
{
    // SamplingKind::All promises Nout == Nin; a smaller configured
    // centroid count used to silently fall through to random sampling.
    ModuleConfig m = diffModule({8}, 32, 4);
    m.sampling = SamplingKind::All;
    Rng wrng(45);
    ModuleExecutor ex(m, 3, wrng);
    ModuleState in = makeState(64, 46);
    Rng s(1);
    EXPECT_THROW(ex.run(in, PipelineKind::Delayed, s),
                 mesorasi::UsageError);
}

TEST(Pipeline, SamplingAllKeepsEveryPointInOrder)
{
    ModuleConfig m = diffModule({8}, 0, 4);
    m.sampling = SamplingKind::All;
    Rng wrng(47);
    ModuleExecutor ex(m, 3, wrng);
    ModuleState in = makeState(64, 48);
    Rng s(2);
    ModuleResult r = ex.run(in, PipelineKind::Delayed, s);
    ASSERT_EQ(static_cast<int32_t>(r.centroidIdx.size()), 64);
    for (int32_t i = 0; i < 64; ++i)
        EXPECT_EQ(r.centroidIdx[i], i);
}

TEST(Pipeline, UnderfullBallsPadWithCentroidAcrossBackends)
{
    // A radius so tight that every ball holds only its own center must
    // not crash the grouped executors (they index neighbors[j] for
    // j < k) under any pipeline or backend.
    for (neighbor::Backend backend :
         {neighbor::Backend::BruteForce, neighbor::Backend::Grid,
          neighbor::Backend::KdTree}) {
        ModuleConfig m = diffModule({8, 12}, 16, 6);
        m.search = SearchKind::Ball;
        m.radius = 1e-4f;
        m.backend = backend;
        Rng wrng(49);
        ModuleExecutor ex(m, 3, wrng);
        ModuleState in = makeState(128, 50);
        for (PipelineKind kind :
             {PipelineKind::Original, PipelineKind::Delayed,
              PipelineKind::LtdDelayed}) {
            Rng s(5);
            ModuleResult r = ex.run(in, kind, s);
            EXPECT_EQ(r.out.features.rows(), 16)
                << neighbor::backendName(backend) << "/"
                << pipelineName(kind);
            for (const auto &entry : r.nit.entries()) {
                ASSERT_EQ(static_cast<int32_t>(entry.neighbors.size()),
                          6);
                for (int32_t nb : entry.neighbors)
                    EXPECT_EQ(nb, entry.centroid);
            }
        }
    }
}

TEST(Pipeline, ConcatRequiresSingleLayer)
{
    ModuleConfig m = diffModule({8, 16});
    m.aggregation = AggregationKind::ConcatCentroidDifference;
    Rng wrng(21);
    EXPECT_THROW(ModuleExecutor(m, 3, wrng), mesorasi::UsageError);
}

// --- Trace invariants -------------------------------------------------

TEST(PipelineTrace, DelayedReducesMlpMacs)
{
    Rng wrng(23);
    ModuleExecutor ex(diffModule({64, 64, 128}, 512, 32), 3, wrng);
    ModuleTrace orig = ex.analyticTrace(PipelineKind::Original, 1024, 3);
    ModuleTrace del = ex.analyticTrace(PipelineKind::Delayed, 1024, 3);
    // Original runs the MLP on Nout*K = 16384 rows; delayed on 1024.
    EXPECT_GT(orig.macs(Phase::Feature), del.macs(Phase::Feature));
    double ratio = static_cast<double>(del.macs(Phase::Feature)) /
                   orig.macs(Phase::Feature);
    EXPECT_NEAR(ratio, 1024.0 / (512.0 * 32.0), 0.02);
}

TEST(PipelineTrace, DelayedAggregationWorksOnOutputSpace)
{
    Rng wrng(25);
    ModuleExecutor ex(diffModule({64, 128}, 512, 32), 3, wrng);
    ModuleTrace orig = ex.analyticTrace(PipelineKind::Original, 1024, 3);
    ModuleTrace del = ex.analyticTrace(PipelineKind::Delayed, 1024, 3);
    // Aggregation traffic grows by ~Mout/Min (gathers 128-D rows
    // instead of 3-D rows) — the Sec. IV-C bottleneck shift.
    EXPECT_GT(del.bytes(Phase::Aggregation),
              10 * orig.bytes(Phase::Aggregation));
}

TEST(PipelineTrace, SearchOpsIdenticalAcrossPipelines)
{
    Rng wrng(27);
    ModuleExecutor ex(diffModule({64}, 256, 16), 3, wrng);
    ModuleTrace a = ex.analyticTrace(PipelineKind::Original, 1024, 3);
    ModuleTrace b = ex.analyticTrace(PipelineKind::Delayed, 1024, 3);
    int64_t sa = 0, sb = 0;
    for (const auto &op : a.ops)
        if (op.phase == Phase::Search)
            sa += op.macs;
    for (const auto &op : b.ops)
        if (op.phase == Phase::Search)
            sb += op.macs;
    EXPECT_EQ(sa, sb);
}

TEST(PipelineTrace, LtdPft1EmitsActualFirstLayerInputDim)
{
    auto findOp = [](const ModuleTrace &t,
                     const std::string &label) -> const OpTrace * {
        for (const auto &op : t.ops)
            if (op.label == label)
                return &op;
        return nullptr;
    };

    // Difference aggregation: the first layer consumes mIn directly.
    Rng wrng(51);
    ModuleExecutor ex(diffModule({16, 24}), 3, wrng);
    ModuleTrace t = ex.analyticTrace(PipelineKind::LtdDelayed, 256, 3);
    const OpTrace *pft1 = findOp(t, "m.pft1");
    ASSERT_NE(pft1, nullptr);
    EXPECT_EQ(pft1->inDim, 3);
    EXPECT_EQ(pft1->macs, 256 * 3 * 16);

    // Concat aggregation: the first layer is 2*mIn wide (W_d neighbor
    // path + W_c centroid path), and a single pft1 op at mlpInDim
    // accounts for the full split product — no separate pft1_c.
    ModuleConfig ec;
    ec.name = "ec";
    ec.numCentroids = 0;
    ec.k = 8;
    ec.search = SearchKind::Knn;
    ec.space = SearchSpace::Features;
    ec.sampling = SamplingKind::All;
    ec.aggregation = AggregationKind::ConcatCentroidDifference;
    ec.mlpWidths = {24};
    ModuleExecutor ex2(ec, 3, wrng);
    ModuleTrace t2 = ex2.analyticTrace(PipelineKind::LtdDelayed, 256, 3);
    const OpTrace *cpft1 = findOp(t2, "ec.pft1");
    ASSERT_NE(cpft1, nullptr);
    EXPECT_EQ(cpft1->inDim, 6);
    EXPECT_EQ(cpft1->macs, 256 * 6 * 24);
    EXPECT_EQ(findOp(t2, "ec.pft1_c"), nullptr);

    // The hoisted MACs equal the Delayed pipeline's split form
    // (pft_d + pft_c), which computes the same product.
    ModuleTrace td = ex2.analyticTrace(PipelineKind::Delayed, 256, 3);
    const OpTrace *pftd = findOp(td, "ec.pft_d");
    const OpTrace *pftc = findOp(td, "ec.pft_c");
    ASSERT_NE(pftd, nullptr);
    ASSERT_NE(pftc, nullptr);
    EXPECT_EQ(cpft1->macs, pftd->macs + pftc->macs);
}

TEST(PipelineTrace, MlpOpMacsAreRowsInOut)
{
    OpTrace op = makeMlpOp(100, 3, 64, "x");
    EXPECT_EQ(op.macs, 100 * 3 * 64);
    EXPECT_EQ(op.bytesWritten, 100 * 64 * 4);
}

TEST(PipelineTrace, FunctionalRunMatchesAnalyticTrace)
{
    Rng wrng(29);
    ModuleExecutor ex(diffModule({16, 32}, 64, 8), 3, wrng);
    ModuleState in = makeState(256, 30);
    Rng s(8);
    ModuleResult r = ex.run(in, PipelineKind::Delayed, s);
    ModuleTrace analytic =
        ex.analyticTrace(PipelineKind::Delayed, 256, 3);
    EXPECT_EQ(r.trace.totalMacs(), analytic.totalMacs());
    EXPECT_EQ(r.trace.macs(Phase::Feature),
              analytic.macs(Phase::Feature));
}

// --- Parameterized exactness sweep ------------------------------------

struct ExactParam
{
    int32_t n;
    int32_t centroids;
    int32_t k;
    int32_t width;
};

class LtdExactSweep : public ::testing::TestWithParam<ExactParam>
{
};

TEST_P(LtdExactSweep, LtdMatchesOriginalEverywhere)
{
    auto [n, centroids, k, width] = GetParam();
    Rng wrng(100 + n);
    ModuleExecutor ex(diffModule({width, width * 2}, centroids, k), 3,
                      wrng, nn::Activation::Relu);
    ModuleState in = makeState(n, 200 + n);
    Rng s1(1), s2(1);
    ModuleResult orig = ex.run(in, PipelineKind::Original, s1);
    ModuleResult ltd = ex.run(in, PipelineKind::LtdDelayed, s2);
    EXPECT_LT(orig.out.features.maxAbsDiff(ltd.out.features), 1e-3f)
        << "n=" << n << " c=" << centroids << " k=" << k;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, LtdExactSweep,
    ::testing::Values(ExactParam{64, 16, 4, 8},
                      ExactParam{128, 32, 8, 16},
                      ExactParam{256, 64, 12, 8},
                      ExactParam{100, 100, 5, 8},
                      ExactParam{512, 32, 32, 24}));

// --- InterpExecutor ----------------------------------------------------

TEST(Interp, ExactInterpolationAtCoincidentPoints)
{
    // When a fine point coincides with a coarse point, inverse-distance
    // weighting must return (numerically) that coarse feature.
    InterpModuleConfig cfg;
    cfg.name = "fp";
    cfg.mlpWidths = {4};
    Rng wrng(31);

    ModuleState coarse;
    coarse.coords = Tensor(2, 3, {0, 0, 0, 10, 0, 0});
    coarse.features = Tensor(2, 2, {1, 2, 3, 4});
    ModuleState fine;
    fine.coords = Tensor(1, 3, {0, 0, 0});
    fine.features = Tensor(1, 1, {5});

    InterpExecutor interp(cfg, 2, 1, wrng, nn::Activation::None);
    ModuleResult r = interp.run(fine, coarse);
    EXPECT_EQ(r.out.features.rows(), 1);
    EXPECT_EQ(r.out.features.cols(), 4);
    // Trace records the interpolation op.
    bool has_interp = false;
    for (const auto &op : r.trace.ops)
        has_interp |= op.kind == OpKind::Interpolate;
    EXPECT_TRUE(has_interp);
}

TEST(Interp, HandlesSingleCoarsePoint)
{
    InterpModuleConfig cfg;
    cfg.name = "fp";
    cfg.mlpWidths = {8};
    Rng wrng(33);
    ModuleState coarse;
    coarse.coords = Tensor(1, 3);
    coarse.features = Tensor(1, 16);
    ModuleState fine = makeState(32, 34);
    InterpExecutor interp(cfg, 16, 3, wrng);
    ModuleResult r = interp.run(fine, coarse);
    EXPECT_EQ(r.out.features.rows(), 32);
    EXPECT_EQ(r.out.features.cols(), 8);
}

} // namespace
} // namespace mesorasi::core
