/**
 * @file
 * CompiledEngine tests:
 *
 *  1. Arena planning: overlapping live ranges never share bytes;
 *     disjoint live ranges alias (planned size < naive size).
 *  2. Bitwise parity: a compiled plan executed repeatedly produces
 *     logits bitwise identical to the per-run stage-graph path, across
 *     all 3 pipelines x all 3 backends, across reps and seeds, for
 *     plain / concat-head / linked / interp-decoder / detection
 *     network shapes.
 *  3. Re-entrancy: concurrent evaluations on separate contexts (the
 *     plan-cached BatchRunner path, 1 vs 4 cloud workers) match the
 *     serial walk bitwise.
 *  4. Zero allocation: after the first evaluation warms the context,
 *     plan.execute on the cached brute-force backend performs zero
 *     heap allocation (global operator-new hook, force-inline pool).
 *  5. Compile-time backend resolution follows the hwsim cost model.
 *  6. The Workspace debug ownership guard trips on double claims.
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <new>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"
#include "common/workspace.hpp"
#include "core/batch_runner.hpp"
#include "core/networks.hpp"
#include "core/plan/arena.hpp"
#include "core/plan/plan_compiler.hpp"
#include "geom/datasets.hpp"

// --- Test allocator hook (as in test_fused_ops) -----------------------

namespace {

thread_local int64_t t_alloc_count = 0;
thread_local bool t_count_allocs = false;

struct AllocCounterScope
{
    AllocCounterScope()
    {
        t_alloc_count = 0;
        t_count_allocs = true;
    }
    ~AllocCounterScope() { t_count_allocs = false; }
    int64_t count() const { return t_alloc_count; }
};

} // namespace

void *
operator new(std::size_t n)
{
    if (t_count_allocs)
        ++t_alloc_count;
    void *p = std::malloc(n ? n : 1);
    if (!p)
        throw std::bad_alloc();
    return p;
}

void *
operator new[](std::size_t n)
{
    return ::operator new(n);
}

// The nothrow variants must be replaced too (std::stable_sort's
// temporary buffer uses them): leaving them to the default operator
// new while delete routes to free() trips ASan's alloc-dealloc-
// mismatch check.
void *
operator new(std::size_t n, const std::nothrow_t &) noexcept
{
    if (t_count_allocs)
        ++t_alloc_count;
    return std::malloc(n ? n : 1);
}

void *
operator new[](std::size_t n, const std::nothrow_t &tag) noexcept
{
    return ::operator new(n, tag);
}

void operator delete(void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete[](void *p, std::size_t) noexcept { std::free(p); }
void operator delete(void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}
void operator delete[](void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}

namespace mesorasi::core::plan {
namespace {

using geom::PointCloud;
using tensor::Tensor;

// --- Miniature networks covering every compiled shape -----------------

ModuleConfig
miniSa(const std::string &name, int32_t centroids, int32_t k,
       float radius, std::vector<int32_t> widths)
{
    ModuleConfig m;
    m.name = name;
    m.numCentroids = centroids;
    m.k = k;
    m.search = SearchKind::Ball;
    m.sampling = SamplingKind::Random;
    m.radius = radius;
    m.mlpWidths = std::move(widths);
    return m;
}

ModuleConfig
miniKnn(const std::string &name, int32_t centroids, int32_t k,
        std::vector<int32_t> widths)
{
    ModuleConfig m = miniSa(name, centroids, k, 0.2f, std::move(widths));
    m.search = SearchKind::Knn;
    return m;
}

ModuleConfig
miniGlobal(const std::string &name, std::vector<int32_t> widths)
{
    ModuleConfig m;
    m.name = name;
    m.search = SearchKind::Global;
    m.mlpWidths = std::move(widths);
    return m;
}

ModuleConfig
miniEdge(const std::string &name, int32_t k, int32_t width)
{
    ModuleConfig m;
    m.name = name;
    m.k = k;
    m.search = SearchKind::Knn;
    m.space = SearchSpace::Features;
    m.sampling = SamplingKind::All;
    m.aggregation = AggregationKind::ConcatCentroidDifference;
    m.mlpWidths = {width};
    return m;
}

/** Coords-space net: Ball + Knn + Global modules, plain FC head. All
 *  searches are 3-D, so every backend (incl. grid) can answer them. */
NetworkConfig
miniPointNet()
{
    NetworkConfig net;
    net.name = "mini-pnpp";
    net.numInputPoints = 256;
    net.numClasses = 8;
    net.modules = {
        miniSa("sa1", 96, 16, 0.3f, {32, 32}),
        miniKnn("sa2", 32, 12, {32, 64}),
        miniGlobal("sa3", {64, 96}),
    };
    net.headWidths = {64};
    return net;
}

/** Linked EdgeConv net with a DGCNN concat head (feature-space k-NN,
 *  concat aggregation, single-layer MLPs). */
NetworkConfig
miniEdgeNet()
{
    NetworkConfig net;
    net.name = "mini-edge";
    net.numInputPoints = 128;
    net.numClasses = 6;
    net.linkedInputs = true;
    net.modules = {miniEdge("ec1", 8, 16), miniEdge("ec2", 8, 24)};
    net.concatModuleOutputs = true;
    net.globalMlpWidths = {64};
    net.headWidths = {32};
    return net;
}

/** Segmentation net with an interpolation decoder. */
NetworkConfig
miniSegNet()
{
    NetworkConfig net;
    net.name = "mini-seg";
    net.task = Task::Segmentation;
    net.numInputPoints = 128;
    net.numClasses = 5;
    net.modules = {
        miniSa("sa1", 48, 12, 0.35f, {16, 32}),
        miniGlobal("sa2", {32, 64}),
    };
    InterpModuleConfig fp1;
    fp1.name = "fp1";
    fp1.mlpWidths = {32};
    InterpModuleConfig fp2;
    fp2.name = "fp2";
    fp2.mlpWidths = {16};
    net.interpModules = {fp1, fp2};
    net.headWidths = {16};
    return net;
}

/** Detection net: encoder + two global stage-2 branches + box head. */
NetworkConfig
miniDetNet()
{
    NetworkConfig net;
    net.name = "mini-det";
    net.task = Task::Detection;
    net.numInputPoints = 96;
    net.numClasses = 2;
    net.modules = {
        miniSa("sa1", 32, 8, 0.4f, {16, 16}),
        miniGlobal("sa2", {32}),
    };
    net.headWidths = {16};
    net.stage2Modules = {miniGlobal("tnet", {16, 32}),
                         miniGlobal("boxnet", {32})};
    net.stage2HeadWidths = {16};
    net.stage2Outputs = 11;
    return net;
}

PointCloud
cloudFor(const NetworkConfig &cfg, uint64_t seed = 17)
{
    geom::ModelNetSim sim(seed, cfg.numInputPoints);
    return sim.sample().cloud;
}

void
expectBitwise(const Tensor &a, const Tensor &b, const std::string &what)
{
    ASSERT_EQ(a.rows(), b.rows()) << what;
    ASSERT_EQ(a.cols(), b.cols()) << what;
    EXPECT_EQ(a.maxAbsDiff(b), 0.0f) << what;
}

/** Plan logits vs stage-graph logits, several reps and seeds. */
void
checkParity(const NetworkConfig &cfg, PipelineKind kind,
            const std::string &what)
{
    NetworkExecutor exec(cfg, /*weightSeed=*/3);
    CompiledEngine plan = PlanCompiler::compile(exec, kind);
    auto ctx = plan.makeContext();
    PointCloud cloud = cloudFor(cfg);
    PointCloud cloud2 = cloudFor(cfg, 23);

    for (uint64_t seed : {1ull, 9ull}) {
        Tensor ref = exec.run(cloud, kind, seed).logits;
        // Same compiled plan, executed repeatedly on one context.
        for (int rep = 0; rep < 2; ++rep) {
            const Tensor &got = plan.execute(cloud, seed, *ctx);
            expectBitwise(got, ref,
                          what + " seed " + std::to_string(seed) +
                              " rep " + std::to_string(rep));
        }
    }
    // A different cloud through the same warm context.
    Tensor ref2 = exec.run(cloud2, kind, 5).logits;
    expectBitwise(plan.execute(cloud2, 5, *ctx), ref2, what + " cloud2");
}

// --- Arena planner ----------------------------------------------------

TEST(ArenaPlanner, OverlappingLivesNeverShareBytes)
{
    ArenaPlanner p;
    int32_t a = p.add(100, 0);
    p.extendLive(a, 3);
    int32_t b = p.add(50, 2); // overlaps a at steps 2..3
    p.extendLive(b, 4);
    int32_t c = p.add(80, 1); // overlaps both
    p.extendLive(c, 5);
    p.plan();

    auto overlaps = [&](int32_t x, int32_t y) {
        int64_t xo = p.offset(x), yo = p.offset(y);
        int64_t xs = p.buffer(x).floats, ys = p.buffer(y).floats;
        return xo < yo + ys && yo < xo + xs;
    };
    EXPECT_FALSE(overlaps(a, b));
    EXPECT_FALSE(overlaps(a, c));
    EXPECT_FALSE(overlaps(b, c));
}

TEST(ArenaPlanner, DisjointLivesAlias)
{
    ArenaPlanner p;
    int32_t a = p.add(1000, 0);
    p.extendLive(a, 1);
    int32_t b = p.add(1000, 2); // dead a: may reuse its bytes
    p.extendLive(b, 3);
    int64_t total = p.plan();
    EXPECT_EQ(p.offset(a), p.offset(b));
    EXPECT_LT(total, p.naiveFloats());
}

// --- Bitwise parity ---------------------------------------------------

TEST(CompiledEngine, ParityAcrossPipelinesAndBackends)
{
    NetworkConfig base = miniPointNet();
    for (PipelineKind kind :
         {PipelineKind::Original, PipelineKind::Delayed,
          PipelineKind::LtdDelayed}) {
        for (neighbor::Backend backend :
             {neighbor::Backend::BruteForce, neighbor::Backend::Grid,
              neighbor::Backend::KdTree}) {
            NetworkConfig cfg = base;
            cfg.backend = backend;
            checkParity(cfg, kind,
                        std::string(pipelineName(kind)) + "/" +
                            neighbor::backendName(backend));
        }
    }
}

TEST(CompiledEngine, ParityAutoBackendCostModel)
{
    // Backend::Auto resolves through the hwsim cost model at compile
    // time; whatever it picks must reproduce the per-run path's bits.
    checkParity(miniPointNet(), PipelineKind::Delayed, "auto-resolved");
}

TEST(CompiledEngine, ParityLinkedConcatHead)
{
    NetworkConfig cfg = miniEdgeNet();
    for (PipelineKind kind :
         {PipelineKind::Original, PipelineKind::Delayed,
          PipelineKind::LtdDelayed})
        checkParity(cfg, kind,
                    std::string("edge/") + pipelineName(kind));
}

TEST(CompiledEngine, ParityInterpDecoder)
{
    checkParity(miniSegNet(), PipelineKind::Delayed, "seg");
    checkParity(miniSegNet(), PipelineKind::Original, "seg-orig");
}

TEST(CompiledEngine, ParityDetection)
{
    checkParity(miniDetNet(), PipelineKind::Delayed, "det");
}

TEST(CompiledEngine, ParityFullZooNetwork)
{
    // One full-size network from the zoo end to end.
    NetworkConfig cfg = zoo::pointnetppClassification();
    NetworkExecutor exec(cfg, 1);
    CompiledEngine plan = PlanCompiler::compile(exec, PipelineKind::Delayed);
    auto ctx = plan.makeContext();
    PointCloud cloud = cloudFor(cfg);
    Tensor ref = exec.run(cloud, PipelineKind::Delayed, 7).logits;
    expectBitwise(plan.execute(cloud, 7, *ctx), ref, "pnpp full");
    // The arena plan must actually alias buffers on a deep network.
    EXPECT_LT(plan.stats().arenaFloats, plan.stats().naiveFloats);
}

// --- Descriptor completeness ------------------------------------------

TEST(CompiledEngine, NoGenericStepsAcrossPipelinesAndShapes)
{
    // The IR is descriptor-complete: every emitted step is a structured
    // op the passes (and the serializer) understand. OpKind::Generic is
    // the invalid sentinel — it must never appear, in head descriptors
    // or fused tails, with the optimizer on or off (off exposes the raw
    // emission, including steps DCE would drop).
    for (const NetworkConfig &cfg : {miniPointNet(), miniEdgeNet(),
                                     miniSegNet(), miniDetNet()}) {
        NetworkExecutor exec(cfg, /*weightSeed=*/3);
        for (PipelineKind kind :
             {PipelineKind::Original, PipelineKind::Delayed,
              PipelineKind::LtdDelayed}) {
            for (auto enable : {PassOptions::Enable::Off,
                                PassOptions::Enable::On}) {
                CompileOptions opts;
                opts.passes.enable = enable;
                CompiledEngine eng =
                    PlanCompiler::compile(exec, kind, opts);
                ASSERT_GT(eng.steps().size(), 0u);
                for (const StepIR &s : eng.steps()) {
                    EXPECT_NE(s.desc.op, OpKind::Generic)
                        << cfg.name << "/" << pipelineName(kind) << ": "
                        << s.name;
                    for (const OpDesc &t : s.tail)
                        EXPECT_NE(t.op, OpKind::Generic)
                            << cfg.name << "/" << pipelineName(kind)
                            << ": " << s.name << " (tail)";
                }
            }
        }
    }
}

// --- Scheduling / re-entrancy -----------------------------------------

TEST(CompiledEngine, SerialAndPooledExecutionsMatch)
{
    NetworkConfig cfg = miniPointNet();
    NetworkExecutor exec(cfg, 3);
    CompiledEngine plan = PlanCompiler::compile(exec, PipelineKind::Delayed);
    PointCloud cloud = cloudFor(cfg);

    auto ctxSerial = plan.makeContext();
    Tensor serial;
    {
        ThreadPool::ScopedForceInline inlineAll;
        serial = plan.execute(cloud, 11, *ctxSerial);
    }
    auto ctxPooled = plan.makeContext();
    expectBitwise(plan.execute(cloud, 11, *ctxPooled), serial,
                  "pooled vs serial");
}

TEST(CompiledEngine, PlanCachedBatchMatchesGraphBatch)
{
    NetworkConfig cfg = miniPointNet();
    NetworkExecutor exec(cfg, 3);
    CompiledEngine plan = PlanCompiler::compile(exec, PipelineKind::Delayed);

    std::vector<PointCloud> clouds;
    geom::ModelNetSim sim(29, cfg.numInputPoints);
    for (int i = 0; i < 6; ++i)
        clouds.push_back(sim.sample().cloud);

    BatchRunner serial(exec, /*numThreads=*/1);
    BatchRunner parallel(exec, /*numThreads=*/4);

    BatchResult graph = serial.run(clouds, PipelineKind::Delayed, 7);
    ContextPool ctxPool(plan);
    // Reuse the pool across calls: contexts stay warm, and concurrent
    // evaluations (4 cloud workers) each get their own arena.
    BatchResult planSeq = serial.run(plan, clouds, 7, &ctxPool);
    BatchResult planPar = parallel.run(plan, clouds, 7, &ctxPool);

    ASSERT_EQ(graph.items.size(), planSeq.items.size());
    for (size_t i = 0; i < clouds.size(); ++i) {
        expectBitwise(planSeq.items[i].run.logits,
                      graph.items[i].run.logits,
                      "plan seq item " + std::to_string(i));
        expectBitwise(planPar.items[i].run.logits,
                      graph.items[i].run.logits,
                      "plan par item " + std::to_string(i));
        EXPECT_EQ(planSeq.items[i].predicted, graph.items[i].predicted);
        EXPECT_EQ(planPar.items[i].predicted, graph.items[i].predicted);
    }
    EXPECT_EQ(predictionAgreement(graph, planPar), 1.0);
}

TEST(CompiledEngine, ConcurrentContextsAreIndependent)
{
    NetworkConfig cfg = miniPointNet();
    NetworkExecutor exec(cfg, 3);
    CompiledEngine plan = PlanCompiler::compile(exec, PipelineKind::Delayed);
    PointCloud cloud = cloudFor(cfg);

    auto ref_ctx = plan.makeContext();
    Tensor ref = plan.execute(cloud, 13, *ref_ctx);

    // Four raw threads, each with its own context, same inputs.
    std::vector<Tensor> results(4);
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&, t] {
            auto ctx = plan.makeContext();
            for (int rep = 0; rep < 3; ++rep)
                results[static_cast<size_t>(t)] =
                    plan.execute(cloud, 13, *ctx);
        });
    }
    for (auto &th : threads)
        th.join();
    for (int t = 0; t < 4; ++t)
        expectBitwise(results[static_cast<size_t>(t)], ref,
                      "thread " + std::to_string(t));
}

// --- Zero allocation --------------------------------------------------

TEST(CompiledEngine, SteadyStateExecutesWithoutHeapAllocation)
{
    NetworkConfig cfg = miniPointNet();
    cfg.backend = neighbor::Backend::BruteForce; // no per-run index build
    NetworkExecutor exec(cfg, 3);
    CompiledEngine plan = PlanCompiler::compile(exec, PipelineKind::Delayed);
    auto ctx = plan.makeContext();
    PointCloud cloud = cloudFor(cfg);

    // All work on this thread so the thread-local hook sees every
    // allocation; two warm-up passes grow every grow-only buffer.
    ThreadPool::ScopedForceInline inlineAll;
    plan.execute(cloud, 7, *ctx);
    plan.execute(cloud, 7, *ctx);

    int64_t allocs;
    {
        AllocCounterScope counter;
        plan.execute(cloud, 7, *ctx);
        allocs = counter.count();
    }
    EXPECT_EQ(allocs, 0)
        << "plan.execute allocated in steady state";
}

// --- Compile-time backend resolution ----------------------------------

TEST(PlanCompiler, CostModelResolution)
{
    // Large 3-D ball workload: the grid's ~8k candidates beat both the
    // exhaustive scan and the tree.
    ModuleIo ball;
    ball.nIn = 4096;
    ball.nOut = 1024;
    ball.k = 32;
    ball.searchDim = 3;
    EXPECT_EQ(PlanCompiler::resolveAutoBackend(ball, /*knn=*/false),
              neighbor::Backend::Grid);

    // Tiny cloud: index builds cannot amortize.
    ModuleIo tiny = ball;
    tiny.nIn = 64;
    tiny.nOut = 16;
    EXPECT_EQ(PlanCompiler::resolveAutoBackend(tiny, /*knn=*/true),
              neighbor::Backend::BruteForce);

    // High-dimensional feature-space k-NN: tree pruning collapses,
    // grid is infeasible.
    ModuleIo feat = ball;
    feat.nIn = 1024;
    feat.nOut = 1024;
    feat.searchDim = 24;
    EXPECT_EQ(PlanCompiler::resolveAutoBackend(feat, /*knn=*/true),
              neighbor::Backend::BruteForce);
    EXPECT_EQ(PlanCompiler::plannedSearchCostMs(neighbor::Backend::Grid,
                                                feat, true),
              std::numeric_limits<double>::infinity());

    // The non-cost-model fallback replays chooseBackend on the shape.
    CompileOptions heur;
    heur.costModelBackendSelection = false;
    EXPECT_EQ(PlanCompiler::resolveAutoBackend(ball, /*knn=*/false, heur),
              neighbor::Backend::Grid);
    EXPECT_EQ(PlanCompiler::resolveAutoBackend(feat, /*knn=*/true, heur),
              neighbor::Backend::BruteForce);
}

// --- Workspace ownership guard ----------------------------------------

TEST(WorkspaceGuard, DoubleClaimTrips)
{
#ifdef NDEBUG
    GTEST_SKIP() << "ownership guard is compiled out of release builds";
#else
    Workspace &ws = Workspace::local();
    Workspace::ScopedClaim first(ws, Workspace::kScratch);
    EXPECT_THROW(
        { Workspace::ScopedClaim second(ws, Workspace::kScratch); },
        InternalError);
    // Distinct slots coexist.
    Workspace::ScopedClaim other(ws, Workspace::kDistOut);
#endif
}

TEST(WorkspaceGuard, ReclaimAfterReleaseIsFine)
{
    Workspace &ws = Workspace::local();
    { Workspace::ScopedClaim a(ws, Workspace::kScratch); }
    { Workspace::ScopedClaim b(ws, Workspace::kScratch); }
    SUCCEED();
}

} // namespace
} // namespace mesorasi::core::plan
