/**
 * @file
 * Plan optimizer pass-pipeline tests:
 *
 *  1. Dead-step elimination: detection plans execute strictly fewer
 *     steps over a strictly smaller arena (the unread encoder tail is
 *     dropped); a synthetic IR shows the post-DCE re-plan shrinking
 *     offsets while overlapping live ranges still never share bytes.
 *  2. Bitwise parity: logits of an optimized plan equal the
 *     unoptimized plan and the per-run stage-graph path bit for bit,
 *     across 3 pipelines x 3 backends and the concat-head / interp-
 *     decoder / detection network shapes.
 *  3. Epilogue fusion: adjacent aggregate/bias epilogues fold into
 *     their producers ("+sub"/"+tail" step names, fused notes).
 *  4. PFT layout selection: the hwsim cost model's decision function,
 *     the in-place aligned layout on a width-30 PFT (ld > cols with
 *     unchanged bits), and the synthetic-IR proof that the rewrite is
 *     a one-word ld change — no conversion steps, no new buffers, no
 *     rewiring (the descriptor-complete IR has no opaque producers).
 *  5. The numerics-changing pass gate (changesNumerics() => skipped
 *     without the explicit opt-in).
 *  6. Satellites: sampler/search DCE liveness (a dead search branch is
 *     actually eliminated), copyRowsInto padding contract, BatchRunner
 *     worker clamping, strided PointsView / dist2Batch parity over
 *     padded rows, CompiledEngine::dump content.
 *
 * Every compile here pins PassOptions::Enable to On or Off explicitly,
 * so the suite is green regardless of the MESORASI_PLAN_PASSES
 * environment (the CI passes-off leg runs it with the pipeline
 * disabled by default).
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/batch_runner.hpp"
#include "core/networks.hpp"
#include "core/plan/passes/pass.hpp"
#include "core/plan/plan_compiler.hpp"
#include "core/plan/step_ir.hpp"
#include "geom/datasets.hpp"
#include "hwsim/config.hpp"
#include "neighbor/dist_batch.hpp"
#include "neighbor/points_view.hpp"
#include "tensor/ops.hpp"

namespace mesorasi::core::plan {
namespace {

using geom::PointCloud;
using tensor::Tensor;

// --- Miniature networks (as in test_plan.cpp) -------------------------

ModuleConfig
miniSa(const std::string &name, int32_t centroids, int32_t k,
       float radius, std::vector<int32_t> widths)
{
    ModuleConfig m;
    m.name = name;
    m.numCentroids = centroids;
    m.k = k;
    m.search = SearchKind::Ball;
    m.sampling = SamplingKind::Random;
    m.radius = radius;
    m.mlpWidths = std::move(widths);
    return m;
}

ModuleConfig
miniKnn(const std::string &name, int32_t centroids, int32_t k,
        std::vector<int32_t> widths)
{
    ModuleConfig m = miniSa(name, centroids, k, 0.2f, std::move(widths));
    m.search = SearchKind::Knn;
    return m;
}

ModuleConfig
miniGlobal(const std::string &name, std::vector<int32_t> widths)
{
    ModuleConfig m;
    m.name = name;
    m.search = SearchKind::Global;
    m.mlpWidths = std::move(widths);
    return m;
}

ModuleConfig
miniEdge(const std::string &name, int32_t k, int32_t width)
{
    ModuleConfig m;
    m.name = name;
    m.k = k;
    m.search = SearchKind::Knn;
    m.space = SearchSpace::Features;
    m.sampling = SamplingKind::All;
    m.aggregation = AggregationKind::ConcatCentroidDifference;
    m.mlpWidths = {width};
    return m;
}

NetworkConfig
miniPointNet()
{
    NetworkConfig net;
    net.name = "mini-pnpp";
    net.numInputPoints = 256;
    net.numClasses = 8;
    net.modules = {
        miniSa("sa1", 96, 16, 0.3f, {32, 32}),
        miniKnn("sa2", 32, 12, {32, 64}),
        miniGlobal("sa3", {64, 96}),
    };
    net.headWidths = {64};
    return net;
}

/** miniPointNet with a 30-wide PFT: 120-byte rows straddle cache lines,
 *  so the layout pass's cost model picks the aligned-blocked layout. */
NetworkConfig
miniRaggedNet()
{
    NetworkConfig net = miniPointNet();
    net.name = "mini-ragged";
    net.modules[0].mlpWidths = {32, 30};
    net.modules[1].mlpWidths = {30, 64};
    return net;
}

NetworkConfig
miniEdgeNet()
{
    NetworkConfig net;
    net.name = "mini-edge";
    net.numInputPoints = 128;
    net.numClasses = 6;
    net.linkedInputs = true;
    net.modules = {miniEdge("ec1", 8, 16), miniEdge("ec2", 8, 24)};
    net.concatModuleOutputs = true;
    net.globalMlpWidths = {64};
    net.headWidths = {32};
    return net;
}

NetworkConfig
miniSegNet()
{
    NetworkConfig net;
    net.name = "mini-seg";
    net.task = Task::Segmentation;
    net.numInputPoints = 128;
    net.numClasses = 5;
    net.modules = {
        miniSa("sa1", 48, 12, 0.35f, {16, 32}),
        miniGlobal("sa2", {32, 64}),
    };
    InterpModuleConfig fp1;
    fp1.name = "fp1";
    fp1.mlpWidths = {32};
    InterpModuleConfig fp2;
    fp2.name = "fp2";
    fp2.mlpWidths = {16};
    net.interpModules = {fp1, fp2};
    net.headWidths = {16};
    return net;
}

NetworkConfig
miniDetNet()
{
    NetworkConfig net;
    net.name = "mini-det";
    net.task = Task::Detection;
    net.numInputPoints = 96;
    net.numClasses = 2;
    net.modules = {
        miniSa("sa1", 32, 8, 0.4f, {16, 16}),
        miniGlobal("sa2", {32}),
    };
    net.headWidths = {16};
    net.stage2Modules = {miniGlobal("tnet", {16, 32}),
                         miniGlobal("boxnet", {32})};
    net.stage2HeadWidths = {16};
    net.stage2Outputs = 11;
    return net;
}

PointCloud
cloudFor(const NetworkConfig &cfg, uint64_t seed = 17)
{
    geom::ModelNetSim sim(seed, cfg.numInputPoints);
    return sim.sample().cloud;
}

CompileOptions
passesOff()
{
    CompileOptions o;
    o.passes.enable = PassOptions::Enable::Off;
    return o;
}

CompileOptions
passesOn()
{
    CompileOptions o;
    o.passes.enable = PassOptions::Enable::On;
    return o;
}

void
expectBitwise(const Tensor &a, const Tensor &b, const std::string &what)
{
    ASSERT_EQ(a.rows(), b.rows()) << what;
    ASSERT_EQ(a.cols(), b.cols()) << what;
    EXPECT_EQ(a.maxAbsDiff(b), 0.0f) << what;
}

/** Optimized and unoptimized plans vs the per-run graph path, bitwise,
 *  over several seeds on warm contexts. */
void
checkOptimizedParity(const NetworkConfig &cfg, PipelineKind kind,
                     const std::string &what,
                     const CompileOptions &optimized = passesOn())
{
    NetworkExecutor exec(cfg, /*weightSeed=*/3);
    CompiledEngine off = PlanCompiler::compile(exec, kind, passesOff());
    CompiledEngine on = PlanCompiler::compile(exec, kind, optimized);
    auto ctxOff = off.makeContext();
    auto ctxOn = on.makeContext();
    PointCloud cloud = cloudFor(cfg);

    for (uint64_t seed : {1ull, 9ull}) {
        Tensor ref = exec.run(cloud, kind, seed).logits;
        expectBitwise(off.execute(cloud, seed, *ctxOff), ref,
                      what + " unoptimized seed " + std::to_string(seed));
        expectBitwise(on.execute(cloud, seed, *ctxOn), ref,
                      what + " optimized seed " + std::to_string(seed));
    }
}

bool
hasStepNamed(const CompiledEngine &plan, const std::string &substr)
{
    for (const StepIR &s : plan.steps())
        if (s.name.find(substr) != std::string::npos)
            return true;
    return false;
}

// --- Dead-step elimination --------------------------------------------

TEST(DeadStepElimination, DetectionDropsEncoderTail)
{
    // Detection stage 2 reads only the raw input features, so the
    // whole encoder is compiled but never consumed: DCE must execute
    // strictly fewer steps over a strictly smaller arena, bitwise
    // unchanged. Stage-2 branches are slim here so the encoder
    // dominates the pre-DCE arena peak — with fat stage-2 buffers the
    // planner aliases the dead encoder into them and only the step
    // count (not the arena) would shrink.
    NetworkConfig cfg = miniDetNet();
    cfg.stage2Modules = {miniGlobal("tnet", {8}),
                         miniGlobal("boxnet", {8})};
    NetworkExecutor exec(cfg, 3);
    CompiledEngine off =
        PlanCompiler::compile(exec, PipelineKind::Delayed, passesOff());
    CompiledEngine on =
        PlanCompiler::compile(exec, PipelineKind::Delayed, passesOn());

    EXPECT_LT(on.stats().numSteps, off.stats().numSteps);
    EXPECT_LT(on.stats().arenaFloats, off.stats().arenaFloats);
    EXPECT_GT(on.stats().stepsRemoved, 0);
    EXPECT_EQ(on.stats().numStepsPrePass, off.stats().numSteps);
    // The encoder modules are gone; stage 2 and the box head survive.
    EXPECT_FALSE(hasStepNamed(on, "sa1."));
    EXPECT_TRUE(hasStepNamed(on, "tnet.feature"));
    EXPECT_TRUE(hasStepNamed(on, "head.box"));

    for (const PassStat &p : off.passStats())
        EXPECT_FALSE(p.ran) << p.pass;
    // Every numerics-preserving pass runs. quantize_pft is gated
    // behind the numerics opt-in (and no-ops without a calibration
    // table), so its ran flag depends on the environment leg — not
    // asserted here.
    for (const PassStat &p : on.passStats())
        if (p.pass != "quantize_pft") {
            EXPECT_TRUE(p.ran) << p.pass;
        }

    auto ctxOff = off.makeContext();
    auto ctxOn = on.makeContext();
    PointCloud cloud = cloudFor(cfg);
    expectBitwise(on.execute(cloud, 7, *ctxOn),
                  off.execute(cloud, 7, *ctxOff), "det optimized");
}

TEST(DeadStepElimination, DropsDeadSamplerAndSearchSteps)
{
    // Sampler draws, sample resolution, and neighbor searches are
    // ordinary descriptor steps with declared read/write sets, so they
    // participate in liveness like any compute step. In the detection
    // plan the encoder branch that consumes them is dead: the whole
    // sampler/search chain must vanish with passes on, and exist with
    // passes off.
    NetworkExecutor exec(miniDetNet(), 3);
    CompiledEngine off =
        PlanCompiler::compile(exec, PipelineKind::Delayed, passesOff());
    CompiledEngine on =
        PlanCompiler::compile(exec, PipelineKind::Delayed, passesOn());

    auto countOp = [](const CompiledEngine &e, OpKind k) {
        int n = 0;
        for (const StepIR &s : e.steps()) {
            n += s.desc.op == k ? 1 : 0;
            for (const OpDesc &t : s.tail)
                n += t.op == k ? 1 : 0;
        }
        return n;
    };
    for (OpKind k : {OpKind::RngDraw, OpKind::ResolveSample,
                     OpKind::SearchNit}) {
        EXPECT_GT(countOp(off, k), 0)
            << "unoptimized plan lost op kind " << opKindName(k);
        EXPECT_EQ(countOp(on, k), 0)
            << "dead " << opKindName(k) << " survived DCE";
    }

    // Eliminating the dead search branch leaves the logits bitwise
    // unchanged.
    auto ctxOff = off.makeContext();
    auto ctxOn = on.makeContext();
    PointCloud cloud = cloudFor(miniDetNet());
    expectBitwise(on.execute(cloud, 5, *ctxOn),
                  off.execute(cloud, 5, *ctxOff), "sampler DCE");
}

TEST(DeadStepElimination, FullZooDetectionShrinks)
{
    // Compile-only (no execution): the full F-PointNet from the zoo.
    NetworkConfig cfg = zoo::fPointNet();
    NetworkExecutor exec(cfg, 1);
    CompiledEngine off =
        PlanCompiler::compile(exec, PipelineKind::Delayed, passesOff());
    CompiledEngine on =
        PlanCompiler::compile(exec, PipelineKind::Delayed, passesOn());
    EXPECT_LT(on.stats().numSteps, off.stats().numSteps);
    // F-PointNet's stage-2 feature buffers (1024x512) dominate the
    // arena peak, so the dead encoder aliases into them either way:
    // the live footprint can only stay equal, while the registered
    // (naive) footprint strictly shrinks with the dead buffers gone.
    EXPECT_LE(on.stats().arenaFloats, off.stats().arenaFloats);
    EXPECT_LT(on.stats().naiveFloats, off.stats().naiveFloats);
}

TEST(DeadStepElimination, SyntheticReplanShrinksArena)
{
    // a feeds b feeds the logits; one step computes an unread buffer.
    PlanIR ir;
    int32_t a = ir.addBuffer(64, 16);
    int32_t b = ir.addBuffer(64, 16);
    int32_t dead = ir.addBuffer(256, 16);

    StepIR s0;
    s0.name = "produce.a";
    s0.writes = {a};
    ir.steps.push_back(s0);
    StepIR s1;
    s1.name = "a.to.b";
    s1.reads = {a};
    s1.writes = {b};
    ir.steps.push_back(s1);
    StepIR s2;
    s2.name = "wasted";
    s2.reads = {b};
    s2.writes = {dead};
    ir.steps.push_back(s2);
    StepIR s3;
    s3.name = "emit";
    s3.reads = {b};
    s3.writes = {kResLogits};
    s3.root = true;
    ir.steps.push_back(s3);

    ArenaPlanResult pre = planArenaFor(ir);
    ASSERT_GE(pre.planId[static_cast<size_t>(dead)], 0);

    PassStat stat;
    PassOptions opts;
    opts.enable = PassOptions::Enable::On;
    makeDeadStepElimination()->run(ir, opts, stat);

    EXPECT_EQ(stat.stepsRemoved, 1);
    ASSERT_EQ(ir.steps.size(), 3u);
    EXPECT_EQ(ir.steps[2].name, "emit");

    ArenaPlanResult post = planArenaFor(ir);
    // The unread buffer is dead and the arena shrinks.
    EXPECT_EQ(post.planId[static_cast<size_t>(dead)], -1);
    EXPECT_LT(post.planner.totalFloats(), pre.planner.totalFloats());
    EXPECT_EQ(post.planner.numBuffers(), 2u);
    // a and b overlap at the a.to.b step: they must not share bytes.
    int32_t pa = post.planId[static_cast<size_t>(a)];
    int32_t pb = post.planId[static_cast<size_t>(b)];
    ASSERT_GE(pa, 0);
    ASSERT_GE(pb, 0);
    int64_t ao = post.planner.offset(pa), bo = post.planner.offset(pb);
    int64_t as = post.planner.buffer(pa).floats;
    int64_t bs = post.planner.buffer(pb).floats;
    EXPECT_FALSE(ao < bo + bs && bo < ao + as)
        << "overlapping live ranges share bytes";
}

// --- Bitwise parity of the optimized plan -----------------------------

TEST(PassParity, AcrossPipelinesAndBackends)
{
    NetworkConfig base = miniPointNet();
    for (PipelineKind kind :
         {PipelineKind::Original, PipelineKind::Delayed,
          PipelineKind::LtdDelayed}) {
        for (neighbor::Backend backend :
             {neighbor::Backend::BruteForce, neighbor::Backend::Grid,
              neighbor::Backend::KdTree}) {
            NetworkConfig cfg = base;
            cfg.backend = backend;
            checkOptimizedParity(cfg, kind,
                                 std::string(pipelineName(kind)) + "/" +
                                     neighbor::backendName(backend));
        }
    }
}

TEST(PassParity, LinkedConcatHead)
{
    NetworkConfig cfg = miniEdgeNet();
    for (PipelineKind kind :
         {PipelineKind::Original, PipelineKind::Delayed,
          PipelineKind::LtdDelayed})
        checkOptimizedParity(cfg, kind,
                             std::string("edge/") + pipelineName(kind));
}

TEST(PassParity, InterpDecoder)
{
    checkOptimizedParity(miniSegNet(), PipelineKind::Delayed, "seg");
    checkOptimizedParity(miniSegNet(), PipelineKind::Original,
                         "seg-orig");
}

TEST(PassParity, Detection)
{
    checkOptimizedParity(miniDetNet(), PipelineKind::Delayed, "det");
}

// --- Epilogue fusion --------------------------------------------------

TEST(EpilogueFusion, FoldsDelayedCentroidSubtract)
{
    NetworkConfig cfg = miniPointNet();
    NetworkExecutor exec(cfg, 3);
    CompiledEngine off =
        PlanCompiler::compile(exec, PipelineKind::Delayed, passesOff());
    CompiledEngine on =
        PlanCompiler::compile(exec, PipelineKind::Delayed, passesOn());

    // Both delayed encoder modules fuse aggregate + centroid-subtract.
    EXPECT_EQ(on.stats().fusionsApplied, 2);
    EXPECT_TRUE(hasStepNamed(on, "sa1.aggregate+sub"));
    EXPECT_TRUE(hasStepNamed(on, "sa2.aggregate+sub"));
    EXPECT_FALSE(hasStepNamed(off, "+sub"));

    bool fusedNote = false;
    for (const StepIR &s : on.steps())
        fusedNote |= s.note.find("fused") != std::string::npos;
    EXPECT_TRUE(fusedNote);
}

TEST(EpilogueFusion, FoldsLtdBiasIntoTail)
{
    // LtdDelayed: the post-aggregation bias/ReLU step fuses with the
    // remaining MLP layers that follow it.
    NetworkConfig cfg = miniPointNet();
    NetworkExecutor exec(cfg, 3);
    CompiledEngine on = PlanCompiler::compile(
        exec, PipelineKind::LtdDelayed, passesOn());
    EXPECT_GE(on.stats().fusionsApplied, 2);
    EXPECT_TRUE(hasStepNamed(on, "+tail"));
}

TEST(EpilogueFusion, FoldsEdgeConvAddEpilogue)
{
    NetworkConfig cfg = miniEdgeNet();
    NetworkExecutor exec(cfg, 3);
    CompiledEngine on =
        PlanCompiler::compile(exec, PipelineKind::Delayed, passesOn());
    EXPECT_GE(on.stats().fusionsApplied, 1);
    EXPECT_TRUE(hasStepNamed(on, "+add"));
}

// --- PFT layout selection ---------------------------------------------

TEST(PftLayoutCostModel, DecisionFollowsGatherProfile)
{
    hwsim::GpuConfig gpu;
    // 30 floats = 120-byte rows straddling 64-byte lines, gathered hot:
    // aligning saves DRAM lines on every gathered row.
    GatherProfile hot{/*gatheredRows=*/1000000, /*producedRows=*/1000,
                     /*cols=*/30};
    EXPECT_EQ(chooseAlignedLayout(hot, gpu), PftLayout::AlignedBlocked);

    // 32-float rows are already line-aligned: nothing to gain.
    GatherProfile aligned{1000000, 1000, 32};
    EXPECT_EQ(chooseAlignedLayout(aligned, gpu), PftLayout::RowMajor);

    // Cold gather over a huge produced buffer: padding traffic
    // dominates the few gathered rows.
    GatherProfile cold{100, 1000000, 30};
    EXPECT_EQ(chooseAlignedLayout(cold, gpu), PftLayout::RowMajor);
}

TEST(PftLayoutSelection, AlignsRaggedPftInPlaceBitwise)
{
    // The width-30 PFT is produced and gathered by descriptor ops only,
    // so the cost-model decision applies in place: ld 30 -> 32, bits
    // unchanged (padding is never read).
    NetworkConfig cfg = miniRaggedNet();
    NetworkExecutor exec(cfg, 3);
    CompiledEngine on =
        PlanCompiler::compile(exec, PipelineKind::Delayed, passesOn());
    EXPECT_GE(on.stats().layoutsChanged, 1);
    bool padded = false;
    for (const BufferShape &bs : on.bufferShapes())
        padded |= bs.cols == 30 && bs.ld == 32;
    EXPECT_TRUE(padded) << "no 30-col buffer got the aligned ld";

    checkOptimizedParity(cfg, PipelineKind::Delayed, "ragged");

    // Forcing row-major keeps every buffer packed.
    CompileOptions rowMajor = passesOn();
    rowMajor.passes.forceLayout = PftLayout::RowMajor;
    CompiledEngine rm =
        PlanCompiler::compile(exec, PipelineKind::Delayed, rowMajor);
    EXPECT_EQ(rm.stats().layoutsChanged, 0);
    for (const BufferShape &bs : rm.bufferShapes())
        EXPECT_EQ(bs.ld, bs.cols);
}

TEST(PftLayoutSelection, RewritesLdInPlaceWithoutNewSteps)
{
    // Every producer is a descriptor whose strides freeze from the
    // buffer table at bake time, so the aligned layout is a one-word
    // in-place ld change: no conversion steps, no new buffers, no
    // consumer rewiring.
    PlanIR ir;
    int32_t src = ir.addBuffer(8, 30);
    int32_t out = ir.addBuffer(4, 30);

    StepIR produce;
    produce.name = "m.pft";
    produce.desc.op = OpKind::MlpForward;
    produce.desc.out = src;
    produce.desc.rows = 8;
    produce.desc.mlpId = 0;
    produce.writes = {src};
    ir.steps.push_back(produce);

    StepIR gather;
    gather.name = "m.aggregate";
    gather.desc.op = OpKind::AggGatherMax;
    gather.desc.in = src;
    gather.desc.out = out;
    gather.desc.rows = 4;
    gather.desc.cols = 30;
    gather.desc.k = 2;
    gather.desc.srcRows = 8;
    gather.reads = {src, virtNit(0)};
    gather.writes = {out};
    ir.steps.push_back(gather);

    StepIR emit;
    emit.name = "emit";
    emit.desc.op = OpKind::ReduceMaxAll;
    emit.desc.in = out;
    emit.desc.out = kResLogits;
    emit.desc.rows = 1;
    emit.desc.cols = 30;
    emit.desc.srcRows = 4;
    emit.reads = {out};
    emit.writes = {kResLogits};
    emit.root = true;
    ir.steps.push_back(emit);

    PassStat stat;
    PassOptions opts;
    opts.enable = PassOptions::Enable::On;
    opts.forceLayout = PftLayout::AlignedBlocked;
    makePftLayoutSelection()->run(ir, opts, stat);

    EXPECT_EQ(stat.layoutsChanged, 1);
    // In place: same steps, same buffers, same wiring.
    ASSERT_EQ(ir.steps.size(), 3u);
    ASSERT_EQ(ir.bufs.size(), 2u);
    EXPECT_EQ(ir.steps[1].desc.in, src);
    // The gathered buffer's ld is padded to the line; cols unchanged.
    EXPECT_EQ(ir.bufs[static_cast<size_t>(src)].cols, 30);
    EXPECT_EQ(ir.bufs[static_cast<size_t>(src)].ld, 32);
    // The ungathered output keeps its packed layout.
    EXPECT_EQ(ir.bufs[static_cast<size_t>(out)].ld, 30);
    // The producer carries the annotation.
    EXPECT_NE(ir.steps[0].note.find("aligned16"), std::string::npos);
}

// --- Numerics-changing pass gate --------------------------------------

class CountingNumericsPass final : public Pass
{
  public:
    explicit CountingNumericsPass(int *runs) : runs_(runs) {}
    const char *name() const override { return "test_numerics"; }
    bool changesNumerics() const override { return true; }
    void
    run(PlanIR &, const PassOptions &, PassStat &) override
    {
        ++*runs_;
    }

  private:
    int *runs_;
};

TEST(NumericsGate, ChangingPassSkippedWithoutOptIn)
{
    // The env opt-in would arm the gate for the whole process (the CI
    // quantized leg exports it); this test is about the default.
    unsetenv("MESORASI_PLAN_NUMERICS_PASSES");
    int runs = 0;
    PassManager pm;
    pm.add(std::make_unique<CountingNumericsPass>(&runs));
    PlanIR ir;
    PassOptions opts;
    opts.enable = PassOptions::Enable::On;

    std::vector<PassStat> stats = pm.run(ir, opts);
    ASSERT_EQ(stats.size(), 1u);
    EXPECT_FALSE(stats[0].ran);
    EXPECT_EQ(runs, 0);

    opts.allowNumericsChanging = true;
    stats = pm.run(ir, opts);
    EXPECT_TRUE(stats[0].ran);
    EXPECT_EQ(runs, 1);
}

// --- Satellite kernels and runtime ------------------------------------

TEST(CopyRowsInto, LeavesDestinationPaddingUntouched)
{
    constexpr int64_t kRows = 4;
    constexpr int32_t kCols = 5;
    constexpr int64_t kSrcLd = 5, kDstLd = 8;
    std::vector<float> src(kRows * kSrcLd);
    for (size_t i = 0; i < src.size(); ++i)
        src[i] = static_cast<float>(i) * 0.5f - 3.0f;
    std::vector<float> dst(kRows * kDstLd, -7.0f);

    tensor::copyRowsInto(dst.data(), kDstLd, src.data(), kSrcLd, kRows,
                         kCols);
    for (int64_t r = 0; r < kRows; ++r) {
        for (int32_t c = 0; c < kCols; ++c)
            EXPECT_EQ(dst[static_cast<size_t>(r * kDstLd + c)],
                      src[static_cast<size_t>(r * kSrcLd + c)]);
        for (int64_t c = kCols; c < kDstLd; ++c)
            EXPECT_EQ(dst[static_cast<size_t>(r * kDstLd + c)], -7.0f);
    }
}

TEST(BatchRunnerClamp, OversizedRequestClampsToHardware)
{
    NetworkConfig cfg = miniPointNet();
    NetworkExecutor exec(cfg, 3);
    BatchRunner big(exec, /*numThreads=*/1024);
    EXPECT_LE(big.numThreads(),
              std::max(1, ThreadPool::defaultThreads()));
    BatchRunner serial(exec, /*numThreads=*/1);
    EXPECT_EQ(serial.numThreads(), 1);
}

TEST(StridedPoints, PaddedRowsMatchPackedBitwise)
{
    constexpr int32_t kN = 24, kDim = 3, kLd = 8;
    std::vector<float> packed(kN * kDim);
    for (size_t i = 0; i < packed.size(); ++i)
        packed[i] = static_cast<float>((7 * i) % 23) * 0.25f - 2.0f;
    std::vector<float> strided(kN * kLd, 99.0f); // poison the padding
    for (int32_t r = 0; r < kN; ++r)
        std::copy(packed.begin() + r * kDim,
                  packed.begin() + (r + 1) * kDim,
                  strided.begin() + r * kLd);

    neighbor::PointsView a(packed.data(), kN, kDim);
    neighbor::PointsView b(strided.data(), kN, kDim, kLd);
    const float query[kDim] = {0.3f, -1.2f, 0.9f};
    std::vector<int32_t> idx = {0, 5, 7, 11, 13, 17, 22, 23, 2};

    std::vector<float> da(idx.size()), db(idx.size());
    neighbor::dist2Batch(a, idx.data(),
                         static_cast<int32_t>(idx.size()), query,
                         da.data());
    neighbor::dist2Batch(b, idx.data(),
                         static_cast<int32_t>(idx.size()), query,
                         db.data());
    for (size_t i = 0; i < idx.size(); ++i) {
        EXPECT_EQ(da[i], db[i]) << "idx " << idx[i];
        EXPECT_EQ(db[i], b.dist2To(idx[i], query)) << "idx " << idx[i];
    }

    std::vector<float> ra(kN), rb(kN);
    neighbor::dist2Range(a, 0, kN, query, ra.data());
    neighbor::dist2Range(b, 0, kN, query, rb.data());
    for (int32_t i = 0; i < kN; ++i)
        EXPECT_EQ(ra[static_cast<size_t>(i)], rb[static_cast<size_t>(i)])
            << "row " << i;
}

// --- Dump -------------------------------------------------------------

TEST(PlanDump, ListsStepsArenaAndPassStats)
{
    NetworkConfig cfg = miniPointNet();
    NetworkExecutor exec(cfg, 3);
    CompiledEngine on =
        PlanCompiler::compile(exec, PipelineKind::Delayed, passesOn());
    std::ostringstream ss;
    on.dump(ss);
    const std::string s = ss.str();
    EXPECT_NE(s.find("engine: pipeline=delayed"), std::string::npos)
        << s;
    EXPECT_NE(s.find("steps: "), std::string::npos);
    EXPECT_NE(s.find("arena: "), std::string::npos);
    EXPECT_NE(s.find("artifact: "), std::string::npos);
    EXPECT_NE(s.find("passes:"), std::string::npos);
    EXPECT_NE(s.find("dead_step_elim: ran"), std::string::npos);
    EXPECT_NE(s.find("sa1.aggregate+sub"), std::string::npos);
    EXPECT_NE(s.find("fused"), std::string::npos);

    CompiledEngine off =
        PlanCompiler::compile(exec, PipelineKind::Delayed, passesOff());
    std::ostringstream so;
    off.dump(so);
    EXPECT_NE(so.str().find("skipped"), std::string::npos);
}

} // namespace
} // namespace mesorasi::core::plan
