/**
 * @file
 * Quantized PFT datapath tests:
 *
 *  1. Kernel parity: quantizeRowsI8/I4 and gatherMaxReduceI8/I4Into are
 *     byte-for-byte identical between the SIMD and forced-scalar paths
 *     (integer max is exact, rounding is nearest-even in both, NaN
 *     clamps to the negative limit in both) across odd column counts,
 *     strided buffers, and saturating inputs.
 *  2. Quantizer semantics: grid values round-trip exactly; the int4
 *     nibble packing clamps to [-7, 7] and zeroes odd trailing high
 *     nibbles.
 *  3. Calibration: determinism across runs, scale for a constant-zero
 *     buffer is 1 (never 0/NaN), non-finite activations and empty
 *     calibration sets are rejected with UsageError, and a network
 *     with no gather buffers (global-only, single-point cloud)
 *     compiles through the workflow unquantized.
 *  4. The opt-in gate: with calibration supplied but numerics-changing
 *     passes not allowed, quantize_pft records ran=false and logits
 *     stay bitwise identical to the fp32 engine.
 *  5. End-to-end: compileQuantizedPft rewrites the delayed and
 *     EdgeConv gathers to int8 (and to packed int4 under
 *     int4MinRows=0, including an odd-width PFT), shrinks the arena,
 *     and keeps logits close to fp32.
 *  6. Artifacts: quantized engines round-trip bitwise through
 *     save/load and re-save byte-identically; the checked-in
 *     pre-quantization fp32 artifact still loads, matches a fresh
 *     compile bitwise, and re-saves to the exact original bytes.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/simd.hpp"
#include "core/networks.hpp"
#include "core/plan/passes/pass.hpp"
#include "core/plan/plan_compiler.hpp"
#include "core/plan/serialize.hpp"
#include "core/plan/step_ir.hpp"
#include "geom/datasets.hpp"
#include "quant/calibrate.hpp"
#include "tensor/init.hpp"
#include "tensor/ops.hpp"

namespace mesorasi::core::plan {
namespace {

using geom::PointCloud;
using tensor::Tensor;

constexpr float kNan = std::numeric_limits<float>::quiet_NaN();

/** Restores the force-scalar flag even if an assertion throws. */
struct ScalarGuard
{
    explicit ScalarGuard(bool force) { simd::setForceScalar(force); }
    ~ScalarGuard() { simd::setForceScalar(false); }
};

Tensor
randomTensor(uint64_t seed, int32_t rows, int32_t cols, float lo = -2.0f,
             float hi = 2.0f)
{
    Rng rng(seed);
    return tensor::uniform(rng, rows, cols, lo, hi);
}

// --- Miniature networks (as in test_plan_passes.cpp) -------------------

ModuleConfig
miniSa(const std::string &name, int32_t centroids, int32_t k,
       float radius, std::vector<int32_t> widths)
{
    ModuleConfig m;
    m.name = name;
    m.numCentroids = centroids;
    m.k = k;
    m.search = SearchKind::Ball;
    m.sampling = SamplingKind::Random;
    m.radius = radius;
    m.mlpWidths = std::move(widths);
    return m;
}

ModuleConfig
miniKnn(const std::string &name, int32_t centroids, int32_t k,
        std::vector<int32_t> widths)
{
    ModuleConfig m = miniSa(name, centroids, k, 0.2f, std::move(widths));
    m.search = SearchKind::Knn;
    return m;
}

ModuleConfig
miniGlobal(const std::string &name, std::vector<int32_t> widths)
{
    ModuleConfig m;
    m.name = name;
    m.search = SearchKind::Global;
    m.mlpWidths = std::move(widths);
    return m;
}

NetworkConfig
miniPointNet()
{
    NetworkConfig net;
    net.name = "mini-pnpp";
    net.numInputPoints = 256;
    net.numClasses = 8;
    net.modules = {
        miniSa("sa1", 96, 16, 0.3f, {32, 32}),
        miniKnn("sa2", 32, 12, {32, 64}),
        miniGlobal("sa3", {64, 96}),
    };
    net.headWidths = {64};
    return net;
}

/** miniPointNet with odd (31-wide) PFTs, exercising the packed-int4
 *  odd-column path (ld padded to 32, trailing high nibble unused). */
NetworkConfig
miniOddNet()
{
    NetworkConfig net = miniPointNet();
    net.name = "mini-odd";
    net.modules[0].mlpWidths = {32, 31};
    net.modules[1].mlpWidths = {31, 64};
    return net;
}

NetworkConfig
miniEdgeNet()
{
    NetworkConfig net;
    net.name = "mini-edge";
    net.numInputPoints = 128;
    net.numClasses = 6;
    net.linkedInputs = true;
    ModuleConfig ec;
    ec.name = "ec1";
    ec.k = 8;
    ec.search = SearchKind::Knn;
    ec.space = SearchSpace::Features;
    ec.sampling = SamplingKind::All;
    ec.aggregation = AggregationKind::ConcatCentroidDifference;
    ec.mlpWidths = {16};
    ModuleConfig ec2 = ec;
    ec2.name = "ec2";
    ec2.mlpWidths = {24};
    net.modules = {ec, ec2};
    net.concatModuleOutputs = true;
    net.globalMlpWidths = {64};
    net.headWidths = {32};
    return net;
}

PointCloud
cloudFor(const NetworkConfig &cfg, uint64_t seed = 17)
{
    geom::ModelNetSim sim(seed, cfg.numInputPoints);
    return sim.sample().cloud;
}

std::vector<PointCloud>
calibClouds(const NetworkConfig &cfg, int32_t n = 3)
{
    std::vector<PointCloud> clouds;
    for (int32_t i = 0; i < n; ++i)
        clouds.push_back(cloudFor(cfg, 40 + static_cast<uint64_t>(i)));
    return clouds;
}

CompileOptions
passesOn()
{
    CompileOptions o;
    o.passes.enable = PassOptions::Enable::On;
    return o;
}

bool
bitwiseEqual(const Tensor &a, const Tensor &b)
{
    return a.rows() == b.rows() && a.cols() == b.cols() &&
           std::memcmp(a.data(), b.data(),
                       static_cast<size_t>(a.bytes())) == 0;
}

int32_t
countOp(const CompiledEngine &e, OpKind op)
{
    int32_t n = 0;
    for (const StepIR &s : e.steps())
        n += s.desc.op == op ? 1 : 0;
    return n;
}

int32_t
countDtype(const CompiledEngine &e, DType dt)
{
    int32_t n = 0;
    for (const BufferShape &b : e.bufferShapes())
        n += b.dtype == dt ? 1 : 0;
    return n;
}

float
rangeOf(const Tensor &t)
{
    float lo = t.data()[0], hi = t.data()[0];
    for (int64_t i = 0; i < t.numel(); ++i) {
        lo = std::min(lo, t.data()[i]);
        hi = std::max(hi, t.data()[i]);
    }
    return hi - lo;
}

// --- Quantizer scale ---------------------------------------------------

TEST(QuantScale, MapsRangeToClampLimit)
{
    EXPECT_FLOAT_EQ(quantScaleFor(12.7f, DType::I8), 0.1f);
    EXPECT_FLOAT_EQ(quantScaleFor(0.7f, DType::I4), 0.1f);
}

TEST(QuantScale, ConstantZeroBufferGetsScaleOne)
{
    // Any positive scale encodes an all-zero buffer exactly; 0 would
    // divide by zero in the quantizer and NaN the whole datapath.
    EXPECT_EQ(quantScaleFor(0.0f, DType::I8), 1.0f);
    EXPECT_EQ(quantScaleFor(0.0f, DType::I4), 1.0f);
}

TEST(QuantScale, RejectsNonFiniteRange)
{
    EXPECT_THROW(quantScaleFor(kNan, DType::I8), UsageError);
    EXPECT_THROW(
        quantScaleFor(std::numeric_limits<float>::infinity(), DType::I8),
        UsageError);
    EXPECT_THROW(quantScaleFor(-1.0f, DType::I4), UsageError);
}

// --- Kernel parity (SIMD vs forced scalar, memcmp) ---------------------

TEST(QuantKernelParity, QuantizeRowsI8AcrossShapes)
{
    for (int32_t cols : {1, 3, 8, 16, 31, 33, 64, 130}) {
        int64_t rows = 7;
        Tensor src = randomTensor(500 + cols, static_cast<int32_t>(rows),
                                  cols, -3.0f, 3.0f);
        src(0, 0) = kNan;          // clamps to -127 in both paths
        src(1, cols / 2) = 400.0f; // saturates to +127
        src(2, cols - 1) = -400.0f;
        int64_t srcStride = cols + 3;
        Tensor padded(static_cast<int32_t>(rows),
                      static_cast<int32_t>(srcStride));
        for (int64_t r = 0; r < rows; ++r)
            for (int32_t c = 0; c < cols; ++c)
                padded(static_cast<int32_t>(r), c) =
                    src(static_cast<int32_t>(r), c);
        int64_t dstStride = cols + 5;
        float scale = 3.0f / 127.0f;

        std::vector<int8_t> scalar(rows * dstStride, 42);
        std::vector<int8_t> simdOut = scalar;
        {
            ScalarGuard g(true);
            tensor::quantizeRowsI8(scalar.data(), dstStride,
                                   padded.data(), srcStride, rows, cols,
                                   scale);
        }
        tensor::quantizeRowsI8(simdOut.data(), dstStride, padded.data(),
                               srcStride, rows, cols, scale);
        EXPECT_EQ(std::memcmp(scalar.data(), simdOut.data(),
                              scalar.size()),
                  0)
            << cols << " cols";
        EXPECT_EQ(scalar[0], -127); // the NaN input
        EXPECT_EQ(scalar[1 * dstStride + cols / 2], 127);
        EXPECT_EQ(scalar[2 * dstStride + cols - 1], -127);
        // Padding bytes between rows are untouched by both paths.
        if (dstStride > cols) {
            EXPECT_EQ(scalar[cols], 42);
        }
    }
}

TEST(QuantKernelParity, QuantizeRowsI4AcrossShapes)
{
    for (int32_t cols : {1, 2, 5, 16, 31, 64, 129}) {
        int64_t rows = 5;
        Tensor src = randomTensor(700 + cols, static_cast<int32_t>(rows),
                                  cols, -1.0f, 1.0f);
        src(0, 0) = kNan;
        src(1, cols / 2) = 50.0f; // saturates to +7
        int64_t strideBytes = (cols + 1) / 2 + 3;
        float scale = 1.0f / 7.0f;

        std::vector<uint8_t> scalar(rows * strideBytes, 0xAB);
        std::vector<uint8_t> simdOut = scalar;
        {
            ScalarGuard g(true);
            tensor::quantizeRowsI4(scalar.data(), strideBytes,
                                   src.data(), cols, rows, cols, scale);
        }
        tensor::quantizeRowsI4(simdOut.data(), strideBytes, src.data(),
                               cols, rows, cols, scale);
        EXPECT_EQ(std::memcmp(scalar.data(), simdOut.data(),
                              scalar.size()),
                  0)
            << cols << " cols";
        // NaN clamps to -7 (two's-complement nibble 0b1001).
        EXPECT_EQ(scalar[0] & 0x0F, 9);
        if (cols % 2 == 1) { // odd trailing column: high nibble zeroed
            EXPECT_EQ(scalar[(cols - 1) / 2] >> 4, 0);
        }
    }
}

TEST(QuantKernelParity, GatherMaxReduceI8AcrossShapes)
{
    Rng rng(900);
    for (int32_t cols : {1, 5, 16, 31, 33, 64, 130}) {
        int32_t srcRows = 50;
        int64_t stride = cols + 2;
        std::vector<int8_t> src(srcRows * stride);
        for (auto &v : src)
            v = static_cast<int8_t>(rng.uniformInt(-127, 127));
        std::vector<int32_t> rows;
        for (int32_t i = 0; i < 9; ++i)
            rows.push_back(
                static_cast<int32_t>(rng.uniformInt(0, srcRows - 1)));
        rows.push_back(rows[0]); // duplicate index
        float scale = 0.037f;

        std::vector<float> scalar(cols, -9.0f), simdOut(cols, -9.0f);
        {
            ScalarGuard g(true);
            tensor::gatherMaxReduceI8Into(
                scalar.data(), src.data(), stride, cols, srcRows,
                rows.data(), static_cast<int32_t>(rows.size()), scale);
        }
        tensor::gatherMaxReduceI8Into(
            simdOut.data(), src.data(), stride, cols, srcRows,
            rows.data(), static_cast<int32_t>(rows.size()), scale);
        EXPECT_EQ(std::memcmp(scalar.data(), simdOut.data(),
                              scalar.size() * sizeof(float)),
                  0)
            << cols << " cols";

        // Against a plain reference: int max then one dequantize.
        for (int32_t c = 0; c < cols; ++c) {
            int8_t m = src[static_cast<size_t>(rows[0]) * stride + c];
            for (int32_t r : rows)
                m = std::max(
                    m, src[static_cast<size_t>(r) * stride + c]);
            EXPECT_EQ(scalar[static_cast<size_t>(c)],
                      static_cast<float>(m) * scale);
        }
    }
}

TEST(QuantKernelParity, GatherMaxReduceI4AcrossShapes)
{
    Rng rng(901);
    for (int32_t cols : {1, 2, 5, 16, 31, 32, 64, 129}) {
        int32_t srcRows = 40;
        int32_t ld = cols + (cols & 1);
        int64_t strideBytes = ld / 2 + 3;
        std::vector<uint8_t> src(
            static_cast<size_t>(srcRows) * strideBytes);
        for (auto &v : src)
            v = static_cast<uint8_t>(rng.uniformInt(0, 255));
        std::vector<int32_t> rows;
        for (int32_t i = 0; i < 7; ++i)
            rows.push_back(
                static_cast<int32_t>(rng.uniformInt(0, srcRows - 1)));
        float scale = 0.21f;

        std::vector<float> scalar(cols), simdOut(cols);
        {
            ScalarGuard g(true);
            tensor::gatherMaxReduceI4Into(
                scalar.data(), src.data(), strideBytes, cols, srcRows,
                rows.data(), static_cast<int32_t>(rows.size()), scale);
        }
        tensor::gatherMaxReduceI4Into(
            simdOut.data(), src.data(), strideBytes, cols, srcRows,
            rows.data(), static_cast<int32_t>(rows.size()), scale);
        EXPECT_EQ(std::memcmp(scalar.data(), simdOut.data(),
                              scalar.size() * sizeof(float)),
                  0)
            << cols << " cols";

        // Reference: unpack nibbles (sign-extended), max, dequantize.
        auto nib = [&](int32_t r, int32_t c) {
            uint8_t b =
                src[static_cast<size_t>(r) * strideBytes + (c >> 1)];
            uint8_t n = (c & 1) ? static_cast<uint8_t>(b >> 4)
                                : static_cast<uint8_t>(b & 0x0F);
            return static_cast<int8_t>((n ^ 8u) - 8);
        };
        for (int32_t c = 0; c < cols; ++c) {
            int8_t m = nib(rows[0], c);
            for (int32_t r : rows)
                m = std::max(m, nib(r, c));
            EXPECT_EQ(scalar[static_cast<size_t>(c)],
                      static_cast<float>(m) * scale);
        }
    }
}

TEST(QuantKernels, GridValuesRoundTripExactly)
{
    // Values already on the quantization grid survive quantize ->
    // dequantize bitwise: q in [-127, 127] is exact in float, and
    // q * scale -> round(x / scale) recovers q for scale a power of 2.
    const float scale = 0.03125f; // 2^-5
    const int32_t cols = 37;
    Tensor src(1, cols);
    for (int32_t c = 0; c < cols; ++c)
        src(0, c) = static_cast<float>((c * 7) % 255 - 127) * scale;
    std::vector<int8_t> q(cols);
    tensor::quantizeRowsI8(q.data(), cols, src.data(), cols, 1, cols,
                           scale);
    std::vector<float> back(cols);
    tensor::dequantizeRowI8(back.data(), q.data(), cols, scale);
    EXPECT_EQ(std::memcmp(back.data(), src.data(), cols * sizeof(float)),
              0);

    // Int4 twin over its [-7, 7] grid.
    Tensor src4(1, cols);
    for (int32_t c = 0; c < cols; ++c)
        src4(0, c) = static_cast<float>(c % 15 - 7) * scale;
    std::vector<uint8_t> q4((cols + 1) / 2);
    tensor::quantizeRowsI4(q4.data(), (cols + 1) / 2, src4.data(), cols,
                           1, cols, scale);
    std::vector<float> back4(cols);
    tensor::dequantizeRowI4(back4.data(), q4.data(), cols, scale);
    EXPECT_EQ(
        std::memcmp(back4.data(), src4.data(), cols * sizeof(float)), 0);
}

// --- Calibration -------------------------------------------------------

TEST(Calibration, DeterministicAndCoversGatherInputs)
{
    NetworkConfig cfg = miniPointNet();
    NetworkExecutor exec(cfg, /*weightSeed=*/3);
    CompiledEngine fp32 =
        PlanCompiler::compile(exec, PipelineKind::Delayed, passesOn());
    std::vector<PointCloud> clouds = calibClouds(cfg);

    PftCalibration a = quant::calibratePft(fp32, clouds, 7);
    PftCalibration b = quant::calibratePft(fp32, clouds, 7);
    ASSERT_FALSE(a.empty());
    // One gathered PFT per non-global encoder module (sa1, sa2).
    EXPECT_EQ(a.maxAbs.size(), 2u);
    EXPECT_EQ(a.maxAbs, b.maxAbs);
    for (const auto &[buf, maxAbs] : a.maxAbs) {
        EXPECT_TRUE(std::isfinite(maxAbs)) << "buffer " << buf;
        EXPECT_GT(maxAbs, 0.0f) << "buffer " << buf;
    }
}

TEST(Calibration, RejectsEmptyCloudSet)
{
    NetworkConfig cfg = miniPointNet();
    NetworkExecutor exec(cfg, 3);
    CompiledEngine fp32 =
        PlanCompiler::compile(exec, PipelineKind::Delayed, passesOn());
    EXPECT_THROW(quant::calibratePft(fp32, {}, 0), UsageError);
}

TEST(Calibration, RejectsNonFiniteActivations)
{
    // NaN coordinates never reach the PFT (relu flushes NaN to +0), so
    // the non-finite case is +Inf: a single-layer MLP (no later
    // Inf - Inf wash) over a point with all-huge coordinates overflows
    // relu(Wx + b) to +Inf in the gathered buffer.
    NetworkConfig cfg;
    cfg.name = "mini-1layer";
    cfg.numInputPoints = 64;
    cfg.numClasses = 4;
    ModuleConfig sa1;
    sa1.name = "sa1";
    sa1.numCentroids = 16;
    sa1.k = 8;
    sa1.search = SearchKind::Knn;
    sa1.sampling = SamplingKind::Random;
    sa1.mlpWidths = {16};
    cfg.modules = {sa1};
    cfg.headWidths = {8};
    NetworkExecutor exec(cfg, 3);
    CompiledEngine fp32 =
        PlanCompiler::compile(exec, PipelineKind::Delayed, passesOn());
    PointCloud bad = cloudFor(cfg);
    bad[0] = {3.0e38f, 3.0e38f, 3.0e38f};
    EXPECT_THROW(quant::calibratePft(fp32, {bad}, 0), UsageError);
}

TEST(Calibration, GlobalOnlySinglePointNetworkStaysUnquantized)
{
    // One global module over a single-point cloud: no gathers, so
    // calibration is empty and the workflow must come back fp32
    // instead of crashing on the degenerate shape.
    NetworkConfig cfg;
    cfg.name = "mini-global";
    cfg.numInputPoints = 1;
    cfg.numClasses = 3;
    cfg.modules = {miniGlobal("g", {8, 16})};
    cfg.headWidths = {8};
    NetworkExecutor exec(cfg, 3);
    CompiledEngine fp32 =
        PlanCompiler::compile(exec, PipelineKind::Delayed, passesOn());
    std::vector<PointCloud> clouds = calibClouds(cfg, 2);
    EXPECT_TRUE(quant::calibratePft(fp32, clouds).empty());

    CompiledEngine q = quant::compileQuantizedPft(
        exec, PipelineKind::Delayed, passesOn(), clouds);
    EXPECT_EQ(q.stats().buffersQuantized, 0);
    EXPECT_EQ(countOp(q, OpKind::QuantizeRows), 0);
    auto ctx = q.makeContext();
    auto ctxRef = fp32.makeContext();
    EXPECT_TRUE(bitwiseEqual(q.execute(clouds[0], 1, *ctx),
                             fp32.execute(clouds[0], 1, *ctxRef)));
}

TEST(Calibration, ConstantZeroRangeQuantizesWithScaleOne)
{
    NetworkConfig cfg = miniPointNet();
    NetworkExecutor exec(cfg, 3);
    CompiledEngine fp32 =
        PlanCompiler::compile(exec, PipelineKind::Delayed, passesOn());
    PftCalibration real =
        quant::calibratePft(fp32, calibClouds(cfg, 1), 0);
    ASSERT_FALSE(real.empty());

    // Forge a constant-zero range for every gathered buffer: the pass
    // must still produce a positive scale (1), not 0 or NaN.
    CompileOptions opts = passesOn();
    opts.passes.allowNumericsChanging = true;
    for (const auto &[buf, unused] : real.maxAbs)
        opts.passes.quantCalibration.maxAbs[buf] = 0.0f;
    CompiledEngine q =
        PlanCompiler::compile(exec, PipelineKind::Delayed, opts);
    EXPECT_GT(q.stats().buffersQuantized, 0);
    for (const BufferShape &b : q.bufferShapes())
        if (b.dtype != DType::F32) {
            EXPECT_EQ(b.qscale, 1.0f);
        }
    auto ctx = q.makeContext();
    const Tensor &logits = q.execute(cloudFor(cfg), 1, *ctx);
    for (int64_t i = 0; i < logits.numel(); ++i)
        EXPECT_TRUE(std::isfinite(logits.data()[i]));
}

// --- The numerics gate -------------------------------------------------

TEST(QuantGate, CalibrationWithoutOptInIsBitwiseFp32)
{
    // The env opt-in would defeat the point of this test (the CI
    // quantized leg exports it for the whole suite).
    unsetenv("MESORASI_PLAN_NUMERICS_PASSES");

    NetworkConfig cfg = miniPointNet();
    NetworkExecutor exec(cfg, 3);
    CompiledEngine fp32 =
        PlanCompiler::compile(exec, PipelineKind::Delayed, passesOn());
    CompileOptions armed = passesOn();
    armed.passes.quantCalibration =
        quant::calibratePft(fp32, calibClouds(cfg, 1), 0);
    ASSERT_FALSE(armed.passes.quantCalibration.empty());
    CompiledEngine gated =
        PlanCompiler::compile(exec, PipelineKind::Delayed, armed);

    bool sawSkipped = false;
    for (const PassStat &p : gated.passStats())
        if (p.pass == "quantize_pft") {
            EXPECT_FALSE(p.ran);
            sawSkipped = true;
        }
    EXPECT_TRUE(sawSkipped);
    EXPECT_EQ(gated.stats().buffersQuantized, 0);
    EXPECT_EQ(countOp(gated, OpKind::QuantizeRows), 0);

    PointCloud cloud = cloudFor(cfg);
    auto ctxA = fp32.makeContext();
    auto ctxB = gated.makeContext();
    for (uint64_t seed : {1ull, 9ull})
        EXPECT_TRUE(bitwiseEqual(fp32.execute(cloud, seed, *ctxA),
                                 gated.execute(cloud, seed, *ctxB)))
            << "seed " << seed;
}

// --- End-to-end quantized engines --------------------------------------

TEST(QuantEndToEnd, DelayedInt8ShrinksArenaAndTracksFp32)
{
    NetworkConfig cfg = miniPointNet();
    NetworkExecutor exec(cfg, 3);
    CompiledEngine fp32 =
        PlanCompiler::compile(exec, PipelineKind::Delayed, passesOn());
    std::vector<PointCloud> clouds = calibClouds(cfg);
    CompiledEngine q = quant::compileQuantizedPft(
        exec, PipelineKind::Delayed, passesOn(), clouds);

    EXPECT_EQ(q.stats().buffersQuantized, 2);
    EXPECT_EQ(countOp(q, OpKind::QuantizeRows), 2);
    EXPECT_EQ(countDtype(q, DType::I8), 2);
    // The int8 PFT copies die right after the gathers, so the arena
    // never grows past fp32 despite the extra buffers.
    EXPECT_LE(q.stats().arenaFloats, fp32.stats().arenaFloats);

    std::ostringstream dump;
    q.dump(dump);
    EXPECT_NE(dump.str().find(":i8"), std::string::npos);
    EXPECT_NE(dump.str().find("quantize_rows"), std::string::npos);
    EXPECT_NE(dump.str().find("quantized"), std::string::npos);

    PointCloud cloud = cloudFor(cfg, 99);
    auto ctxRef = fp32.makeContext();
    auto ctxQ = q.makeContext();
    const Tensor &ref = fp32.execute(cloud, 5, *ctxRef);
    const Tensor &got = q.execute(cloud, 5, *ctxQ);
    ASSERT_EQ(ref.rows(), got.rows());
    ASSERT_EQ(ref.cols(), got.cols());
    float range = rangeOf(ref);
    ASSERT_GT(range, 0.0f);
    EXPECT_LT(ref.maxAbsDiff(got), 0.25f * range);
}

TEST(QuantEndToEnd, EdgeConcatQuantizesTheGatherOperandOnly)
{
    // EdgeConv's split-weight epilogue reads a separate f32 aux buffer:
    // only the gather operand quantizes, exercising the mixed
    // int8-in / f32-aux fused path.
    NetworkConfig cfg = miniEdgeNet();
    NetworkExecutor exec(cfg, 3);
    std::vector<PointCloud> clouds = calibClouds(cfg);
    CompiledEngine q = quant::compileQuantizedPft(
        exec, PipelineKind::Delayed, passesOn(), clouds);

    EXPECT_EQ(q.stats().buffersQuantized, 2); // one per EdgeConv module
    auto ctx = q.makeContext();
    const Tensor &logits = q.execute(clouds[0], 1, *ctx);
    for (int64_t i = 0; i < logits.numel(); ++i)
        EXPECT_TRUE(std::isfinite(logits.data()[i]));
}

TEST(QuantEndToEnd, Int4PacksIncludingOddWidths)
{
    NetworkConfig cfg = miniOddNet();
    NetworkExecutor exec(cfg, 3);
    CompiledEngine fp32 =
        PlanCompiler::compile(exec, PipelineKind::Delayed, passesOn());
    std::vector<PointCloud> clouds = calibClouds(cfg);
    CompiledEngine q = quant::compileQuantizedPft(
        exec, PipelineKind::Delayed, passesOn(), clouds,
        /*seedBase=*/0, /*int4MinRows=*/0);

    EXPECT_EQ(countDtype(q, DType::I4), 2);
    for (const BufferShape &b : q.bufferShapes())
        if (b.dtype == DType::I4) {
            EXPECT_EQ(b.ld % 2, 0);
            EXPECT_GE(b.ld, b.cols);
        }
    EXPECT_LE(q.stats().arenaFloats, fp32.stats().arenaFloats);

    auto ctx = q.makeContext();
    const Tensor &logits = q.execute(clouds[0], 3, *ctx);
    for (int64_t i = 0; i < logits.numel(); ++i)
        EXPECT_TRUE(std::isfinite(logits.data()[i]));
}

// --- Artifacts ---------------------------------------------------------

TEST(QuantSerialize, QuantizedEngineRoundTripsBitwise)
{
    NetworkConfig cfg = miniPointNet();
    NetworkExecutor exec(cfg, 3);
    std::vector<PointCloud> clouds = calibClouds(cfg);
    for (int64_t int4MinRows :
         {std::numeric_limits<int64_t>::max(), int64_t{0}}) {
        CompiledEngine q = quant::compileQuantizedPft(
            exec, PipelineKind::Delayed, passesOn(), clouds, 0,
            int4MinRows);
        std::vector<uint8_t> bytes = saveEngineToBytes(q);
        CompiledEngine loaded =
            loadEngineFromBytes(bytes.data(), bytes.size());

        EXPECT_EQ(loaded.stats().buffersQuantized,
                  q.stats().buffersQuantized);
        for (size_t i = 0; i < q.bufferShapes().size(); ++i) {
            EXPECT_EQ(loaded.bufferShapes()[i].dtype,
                      q.bufferShapes()[i].dtype);
            EXPECT_EQ(loaded.bufferShapes()[i].qscale,
                      q.bufferShapes()[i].qscale);
        }

        PointCloud cloud = cloudFor(cfg, 123);
        auto ctxA = q.makeContext();
        auto ctxB = loaded.makeContext();
        for (uint64_t seed : {2ull, 11ull})
            EXPECT_TRUE(bitwiseEqual(q.execute(cloud, seed, *ctxA),
                                     loaded.execute(cloud, seed, *ctxB)))
                << "int4MinRows " << int4MinRows << " seed " << seed;

        EXPECT_EQ(saveEngineToBytes(loaded), bytes);
    }
}

TEST(QuantSerialize, RejectsCorruptQuantSection)
{
    NetworkConfig cfg = miniPointNet();
    NetworkExecutor exec(cfg, 3);
    CompiledEngine q = quant::compileQuantizedPft(
        exec, PipelineKind::Delayed, passesOn(), calibClouds(cfg, 1));
    std::vector<uint8_t> bytes = saveEngineToBytes(q);

    // Truncating the quant section mid-entry must fail cleanly.
    std::vector<uint8_t> cut(bytes.begin(), bytes.end() - 3);
    EXPECT_THROW(loadEngineFromBytes(cut.data(), cut.size()),
                 UsageError);
}

TEST(QuantSerialize, PreQuantizationArtifactStillLoads)
{
    // Checked-in fp32 artifact from the PR 7 format (no quant
    // section): it must load, execute bitwise identically to a fresh
    // compile of the same network/weights, and re-save to the exact
    // original bytes (the quant section is absent, not empty).
    const std::string path = std::string(MESORASI_TEST_DATA_DIR) +
                             "/engine_pr7_fp32_delayed.meso";
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    ASSERT_TRUE(in.good()) << path;
    std::vector<uint8_t> original(static_cast<size_t>(in.tellg()));
    in.seekg(0);
    in.read(reinterpret_cast<char *>(original.data()),
            static_cast<std::streamsize>(original.size()));
    ASSERT_TRUE(in.good());

    CompiledEngine loaded = loadEngine(path);
    EXPECT_EQ(loaded.stats().buffersQuantized, 0);
    EXPECT_EQ(countOp(loaded, OpKind::QuantizeRows), 0);

    NetworkConfig cfg = miniPointNet();
    NetworkExecutor exec(cfg, /*weightSeed=*/1);
    CompiledEngine fresh =
        PlanCompiler::compile(exec, PipelineKind::Delayed);
    PointCloud cloud = cloudFor(cfg, 23);
    auto ctxA = loaded.makeContext();
    auto ctxB = fresh.makeContext();
    for (uint64_t seed : {7ull, 8ull})
        EXPECT_TRUE(bitwiseEqual(loaded.execute(cloud, seed, *ctxA),
                                 fresh.execute(cloud, seed, *ctxB)))
            << "seed " << seed;

    EXPECT_EQ(saveEngineToBytes(loaded), original);
}

} // namespace
} // namespace mesorasi::core::plan
