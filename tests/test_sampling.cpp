/**
 * @file
 * Tests for centroid samplers: FPS, random, voxel grid.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>
#include <tuple>

#include "common/check.hpp"
#include "geom/sampling.hpp"
#include "geom/shapes.hpp"

namespace mesorasi::geom {
namespace {

PointCloud
testCloud(int n, uint64_t seed = 1)
{
    mesorasi::Rng rng(seed);
    ShapeParams p{n, 0.0f, -1};
    return makeSphere(rng, p, {}, 1.0f);
}

TEST(Fps, ReturnsDistinctIndices)
{
    PointCloud c = testCloud(200);
    auto idx = farthestPointSample(c, 50);
    std::set<int32_t> s(idx.begin(), idx.end());
    EXPECT_EQ(s.size(), 50u);
}

TEST(Fps, StartsAtStartIndex)
{
    PointCloud c = testCloud(100);
    auto idx = farthestPointSample(c, 10, 7);
    EXPECT_EQ(idx[0], 7);
}

TEST(Fps, SecondPickIsFarthestFromFirst)
{
    PointCloud c({{0, 0, 0}, {1, 0, 0}, {5, 0, 0}, {2, 0, 0}});
    auto idx = farthestPointSample(c, 2, 0);
    EXPECT_EQ(idx[1], 2); // (5,0,0) is farthest from (0,0,0)
}

TEST(Fps, BetterSpreadThanRandom)
{
    PointCloud c = testCloud(500, 3);
    mesorasi::Rng rng(4);
    auto fps = farthestPointSample(c, 40);
    auto rnd = randomSample(rng, c, 40);
    // FPS maximizes the minimum pairwise distance; random does not.
    EXPECT_GT(minPairwiseDistance(c, fps),
              minPairwiseDistance(c, rnd));
}

TEST(Fps, FullSampleIsPermutation)
{
    PointCloud c = testCloud(32);
    auto idx = farthestPointSample(c, 32);
    std::set<int32_t> s(idx.begin(), idx.end());
    EXPECT_EQ(s.size(), 32u);
}

TEST(Fps, RejectsOverdraw)
{
    PointCloud c = testCloud(10);
    EXPECT_THROW(farthestPointSample(c, 11), mesorasi::UsageError);
    EXPECT_THROW(farthestPointSample(c, 5, 10), mesorasi::UsageError);
}

TEST(RandomSample, DistinctAndInRange)
{
    PointCloud c = testCloud(100);
    mesorasi::Rng rng(5);
    auto idx = randomSample(rng, c, 30);
    std::set<int32_t> s(idx.begin(), idx.end());
    EXPECT_EQ(s.size(), 30u);
    for (int32_t i : idx) {
        EXPECT_GE(i, 0);
        EXPECT_LT(i, 100);
    }
}

TEST(VoxelGrid, CoarseGridCollapsesToFewCells)
{
    PointCloud c = testCloud(1000);
    auto idx = voxelGridSample(c, 10.0f); // one giant voxel
    EXPECT_EQ(idx.size(), 1u);
}

TEST(VoxelGrid, FineGridKeepsAll)
{
    PointCloud c({{0, 0, 0}, {1, 0, 0}, {0, 1, 0}});
    auto idx = voxelGridSample(c, 0.1f);
    EXPECT_EQ(idx.size(), 3u);
}

TEST(VoxelGrid, RepresentativesAreFirstSeen)
{
    PointCloud c({{0.01f, 0, 0}, {0.02f, 0, 0}, {5, 0, 0}});
    auto idx = voxelGridSample(c, 1.0f);
    ASSERT_EQ(idx.size(), 2u);
    EXPECT_EQ(idx[0], 0);
    EXPECT_EQ(idx[1], 2);
}

TEST(VoxelGrid, SampledSpacingRespectsVoxelSize)
{
    PointCloud c = testCloud(2000, 6);
    float vox = 0.4f;
    auto idx = voxelGridSample(c, vox);
    // Any two representatives must be at least one voxel apart in some
    // axis -- so no two can be closer than ~0 (same cell collision is
    // impossible); verify count shrinks meaningfully.
    EXPECT_LT(idx.size(), 600u);
    EXPECT_GT(idx.size(), 20u);
}


TEST(Morton, OrderIsPermutation)
{
    PointCloud c = testCloud(200, 7);
    PointCloud m = mortonOrder(c);
    ASSERT_EQ(m.size(), c.size());
    // Same multiset of points.
    auto key = [](const Point3 &p) {
        return std::tuple<float, float, float>(p.x, p.y, p.z);
    };
    std::multiset<std::tuple<float, float, float>> a, b;
    for (size_t i = 0; i < c.size(); ++i) {
        a.insert(key(c[i]));
        b.insert(key(m[i]));
    }
    EXPECT_EQ(a, b);
}

TEST(Morton, ImprovesIndexLocality)
{
    // After Morton ordering, spatially adjacent points should be closer
    // in index space: the mean |i - j| over nearest-neighbor pairs
    // drops versus random order.
    PointCloud c = testCloud(500, 8);
    PointCloud m = mortonOrder(c);
    auto mean_nn_index_gap = [](const PointCloud &cloud) {
        double acc = 0.0;
        for (size_t i = 0; i < cloud.size(); ++i) {
            float best = std::numeric_limits<float>::max();
            size_t best_j = i;
            for (size_t j = 0; j < cloud.size(); ++j) {
                if (j == i)
                    continue;
                float d = cloud[i].dist2(cloud[j]);
                if (d < best) {
                    best = d;
                    best_j = j;
                }
            }
            acc += std::abs(static_cast<double>(i) -
                            static_cast<double>(best_j));
        }
        return acc / cloud.size();
    };
    EXPECT_LT(mean_nn_index_gap(m), 0.5 * mean_nn_index_gap(c));
}

TEST(Morton, EmptyAndSingleton)
{
    PointCloud empty;
    EXPECT_EQ(mortonOrder(empty).size(), 0u);
    PointCloud one({{1, 2, 3}});
    PointCloud m = mortonOrder(one);
    ASSERT_EQ(m.size(), 1u);
    EXPECT_EQ(m[0], Point3(1, 2, 3));
}

TEST(Morton, PreservesLabels)
{
    PointCloud c;
    c.add({0, 0, 0}, 5);
    c.add({9, 9, 9}, 7);
    c.add({1, 1, 1}, 6);
    PointCloud m = mortonOrder(c);
    ASSERT_TRUE(m.hasLabels());
    for (size_t i = 0; i < m.size(); ++i) {
        if (m[i] == Point3(9, 9, 9))
            EXPECT_EQ(m.labels()[i], 7);
    }
}

TEST(MinPairwise, RequiresTwo)
{
    PointCloud c = testCloud(10);
    EXPECT_THROW(minPairwiseDistance(c, {0}), mesorasi::UsageError);
}

} // namespace
} // namespace mesorasi::geom
