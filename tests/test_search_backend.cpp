/**
 * @file
 * Tests for the pluggable search-backend layer: cross-backend parity
 * (identical k-NN and ball-query results, ties broken by index), the
 * name registry/factory, and the Auto selection policy.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <optional>
#include <set>
#include <tuple>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "core/pipeline.hpp"
#include "hwsim/agg_unit.hpp"
#include "neighbor/search_backend.hpp"
#include "tensor/tensor.hpp"

namespace mesorasi::neighbor {
namespace {

using mesorasi::Rng;

std::vector<float>
randomRows(Rng &rng, int32_t n, int32_t dim)
{
    std::vector<float> data(static_cast<size_t>(n) * dim);
    for (auto &v : data)
        v = rng.uniform(-1.0f, 1.0f);
    return data;
}

std::vector<int32_t>
someQueries(int32_t n)
{
    std::vector<int32_t> q;
    for (int32_t i = 0; i < n; i += std::max(1, n / 23))
        q.push_back(i);
    return q;
}

/** All registered backends applicable to a view of this dimension. */
std::vector<std::string>
applicableBackends(int32_t dim)
{
    std::vector<std::string> names = registeredBackendNames();
    if (dim != 3)
        names.erase(std::remove(names.begin(), names.end(), "grid"),
                    names.end());
    return names;
}

TEST(BackendParity, KnnIdenticalAcrossBackends)
{
    for (auto [n, dim, k] : {std::tuple<int32_t, int32_t, int32_t>{
                                 400, 3, 16},
                             {150, 3, 8},
                             {200, 8, 12},
                             {64, 32, 7}}) {
        Rng rng(100 + n + dim);
        auto data = randomRows(rng, n, dim);
        PointsView v(data.data(), n, dim);
        auto queries = someQueries(n);
        SearchHints hints;
        hints.numQueries = static_cast<int32_t>(queries.size());
        hints.k = k;

        auto ref = makeBackendByName("brute_force", v, hints)
                       ->knnTable(queries, k);
        for (const std::string &name : applicableBackends(dim)) {
            auto got =
                makeBackendByName(name, v, hints)->knnTable(queries, k);
            ASSERT_EQ(ref.size(), got.size()) << name;
            for (int32_t i = 0; i < ref.size(); ++i)
                EXPECT_EQ(ref[i].neighbors, got[i].neighbors)
                    << name << " n=" << n << " dim=" << dim
                    << " query " << queries[i];
        }
    }
}

TEST(BackendParity, BallIdenticalAcrossBackends)
{
    for (auto [n, dim, maxK, radius] :
         {std::tuple<int32_t, int32_t, int32_t, float>{400, 3, 12, 0.4f},
          {150, 3, 64, 0.9f}, // large ball: exercises truncation
          {200, 8, 16, 1.1f}}) {
        Rng rng(200 + n + dim);
        auto data = randomRows(rng, n, dim);
        PointsView v(data.data(), n, dim);
        auto queries = someQueries(n);
        SearchHints hints;
        hints.numQueries = static_cast<int32_t>(queries.size());
        hints.k = maxK;
        hints.radius = radius;

        auto ref = makeBackendByName("brute_force", v, hints)
                       ->ballTable(queries, radius, maxK);
        for (const std::string &name : applicableBackends(dim)) {
            auto got = makeBackendByName(name, v, hints)
                           ->ballTable(queries, radius, maxK);
            ASSERT_EQ(ref.size(), got.size()) << name;
            for (int32_t i = 0; i < ref.size(); ++i)
                EXPECT_EQ(ref[i].neighbors, got[i].neighbors)
                    << name << " n=" << n << " dim=" << dim
                    << " query " << queries[i];
        }
    }
}

TEST(BackendParity, UnpaddedBallKeepsShortGroups)
{
    Rng rng(5);
    auto data = randomRows(rng, 120, 3);
    PointsView v(data.data(), 120, 3);
    std::vector<int32_t> queries{0, 17, 60, 119};
    for (const std::string &name : applicableBackends(3)) {
        auto nit = makeBackendByName(name, v)->ballTable(
            queries, 0.05f, 8, /*padToMaxK=*/false);
        for (int32_t i = 0; i < nit.size(); ++i) {
            // Tight radius: groups may hold fewer than maxK members but
            // always include the centroid itself.
            EXPECT_GE(nit[i].neighbors.size(), 1u) << name;
            EXPECT_EQ(nit[i].neighbors[0], queries[i]) << name;
        }
    }
}

TEST(BackendParity, UnderfullBallsPadToMaxKAcrossBackends)
{
    // A radius so tight that every ball holds only its own center: all
    // three backends must pad the entry to exactly maxK copies of the
    // centroid, so executors that index neighbors[j] for j < k and the
    // AU's non-empty-entry invariant stay safe.
    Rng rng(8);
    auto data = randomRows(rng, 120, 3);
    PointsView v(data.data(), 120, 3);
    std::vector<int32_t> queries{0, 17, 60, 119};
    for (const std::string &name : applicableBackends(3)) {
        auto nit =
            makeBackendByName(name, v)->ballTable(queries, 1e-5f, 8);
        ASSERT_EQ(nit.size(), static_cast<int32_t>(queries.size()))
            << name;
        for (int32_t i = 0; i < nit.size(); ++i) {
            ASSERT_EQ(nit[i].neighbors.size(), 8u) << name;
            for (int32_t n : nit[i].neighbors)
                EXPECT_EQ(n, queries[i]) << name;
        }
    }
}

TEST(BackendParity, EmptyBallsPadWithCentroid)
{
    // A backend may legitimately return nothing inside the radius
    // (approximate or filtered indexes, external-query adapters);
    // ballTable must still emit full entries seeded with the centroid.
    class EmptyBackend final : public SearchBackend
    {
      public:
        explicit EmptyBackend(const PointsView &p) : SearchBackend(p) {}
        const char *name() const override { return "empty"; }
        std::vector<int32_t>
        knn(const float *, int32_t) const override
        {
            return {};
        }
        std::vector<int32_t>
        radius(const float *, float, int32_t) const override
        {
            return {};
        }
    };

    Rng rng(9);
    auto data = randomRows(rng, 30, 3);
    PointsView v(data.data(), 30, 3);
    EmptyBackend backend(v);
    std::vector<int32_t> queries{3, 11, 29};
    auto nit = backend.ballTable(queries, 0.5f, 4);
    ASSERT_EQ(nit.size(), 3);
    for (int32_t i = 0; i < nit.size(); ++i) {
        ASSERT_EQ(nit[i].neighbors.size(), 4u);
        for (int32_t n : nit[i].neighbors)
            EXPECT_EQ(n, queries[i]);
    }
    // The padded table satisfies the AU's non-empty-entry requirement.
    hwsim::AggregationUnit au(hwsim::AuConfig{}, hwsim::NpuConfig{},
                              hwsim::EnergyConfig{});
    auto stats = au.aggregate(nit, 30, 8);
    EXPECT_GT(stats.cycles, 0);
}

TEST(BackendRegistry, ShipsThreeBackends)
{
    auto names = registeredBackendNames();
    EXPECT_NE(std::find(names.begin(), names.end(), "brute_force"),
              names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "grid"),
              names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "kdtree"),
              names.end());
}

TEST(BackendRegistry, NamesRoundTripAndRejectUnknown)
{
    EXPECT_EQ(backendFromName("auto"), Backend::Auto);
    for (Backend b :
         {Backend::BruteForce, Backend::Grid, Backend::KdTree})
        EXPECT_EQ(backendFromName(backendName(b)), b);
    EXPECT_THROW(backendFromName("octree"), mesorasi::UsageError);

    Rng rng(6);
    auto data = randomRows(rng, 10, 3);
    PointsView v(data.data(), 10, 3);
    EXPECT_THROW(makeBackendByName("octree", v), mesorasi::UsageError);
}

TEST(BackendRegistry, CustomBackendIsConstructible)
{
    registerSearchBackend(
        "test_alias", [](const PointsView &p, const SearchHints &h) {
            return makeBackendByName("brute_force", p, h);
        });
    Rng rng(7);
    auto data = randomRows(rng, 20, 3);
    PointsView v(data.data(), 20, 3);
    auto backend = makeBackendByName("test_alias", v);
    EXPECT_STREQ(backend->name(), "brute_force");
    auto nit = backend->knnTable({0, 5}, 3);
    EXPECT_EQ(nit.size(), 2);
}

TEST(AutoPolicy, PicksSensibleBackends)
{
    Rng rng(8);
    auto small = randomRows(rng, 64, 3);
    auto big = randomRows(rng, 4096, 3);
    auto feat = randomRows(rng, 1024, 64);

    SearchHints knn_hints;
    knn_hints.k = 16;
    SearchHints ball_hints;
    ball_hints.k = 32;
    ball_hints.radius = 0.2f;

    // Tiny cloud: index construction never pays off.
    EXPECT_EQ(chooseBackend({small.data(), 64, 3}, knn_hints),
              Backend::BruteForce);
    // 3-D ball query at scale: the grid.
    EXPECT_EQ(chooseBackend({big.data(), 4096, 3}, ball_hints),
              Backend::Grid);
    // 3-D k-NN at scale: the KD-tree.
    EXPECT_EQ(chooseBackend({big.data(), 4096, 3}, knn_hints),
              Backend::KdTree);
    // High-dimensional feature space (DGCNN): exhaustive scan.
    EXPECT_EQ(chooseBackend({feat.data(), 1024, 64}, knn_hints),
              Backend::BruteForce);

    // makeBackend(Auto) constructs what the policy picked.
    auto backend =
        makeBackend(Backend::Auto, {big.data(), 4096, 3}, ball_hints);
    EXPECT_STREQ(backend->name(), "grid");
}

TEST(AutoPolicy, GridRefusesNon3d)
{
    Rng rng(9);
    auto data = randomRows(rng, 100, 5);
    PointsView v(data.data(), 100, 5);
    EXPECT_THROW(makeBackend(Backend::Grid, v), mesorasi::UsageError);
}

// --- Pipeline-level parity: the executor must produce identical
// features no matter which backend answers the N stage. --------------

core::ModuleState
torusState(int32_t n)
{
    Rng rng(11);
    core::ModuleState state;
    state.coords = tensor::Tensor(n, 3);
    for (int32_t i = 0; i < n; ++i) {
        float u = rng.uniform(0.0f, 6.2831853f);
        float w = rng.uniform(0.0f, 6.2831853f);
        float r = 0.7f + 0.25f * std::cos(w);
        state.coords(i, 0) = r * std::cos(u);
        state.coords(i, 1) = r * std::sin(u);
        state.coords(i, 2) = 0.25f * std::sin(w);
    }
    state.features = state.coords;
    return state;
}

TEST(BackendRegistry, PipelineRoutesThroughCustomBackend)
{
    registerSearchBackend(
        "counting", [](const PointsView &p, const SearchHints &h) {
            return makeBackendByName("brute_force", p, h);
        });
    core::ModuleConfig cfg;
    cfg.name = "m";
    cfg.numCentroids = 32;
    cfg.k = 8;
    cfg.search = core::SearchKind::Knn;
    cfg.customBackend = "counting";
    cfg.mlpWidths = {16};
    Rng wrng(3);
    core::ModuleExecutor ex(cfg, 3, wrng);
    core::ModuleState state = torusState(128);
    Rng srng(4);
    core::ModuleResult r =
        ex.run(state, core::PipelineKind::Delayed, srng);
    EXPECT_EQ(r.out.features.rows(), 32);

    cfg.customBackend = "no_such_backend";
    core::ModuleExecutor bad(cfg, 3, wrng);
    Rng srng2(4);
    EXPECT_THROW(bad.run(state, core::PipelineKind::Delayed, srng2),
                 mesorasi::UsageError);
}

TEST(BackendParity, PipelineOutputsIdenticalAcrossBackends)
{
    core::ModuleState state = torusState(512);
    for (core::SearchKind search :
         {core::SearchKind::Knn, core::SearchKind::Ball}) {
        std::optional<tensor::Tensor> ref;
        for (Backend b :
             {Backend::BruteForce, Backend::Grid, Backend::KdTree}) {
            core::ModuleConfig cfg;
            cfg.name = "m";
            cfg.numCentroids = 128;
            cfg.k = 16;
            cfg.search = search;
            cfg.radius = 0.3f;
            cfg.backend = b;
            cfg.mlpWidths = {32, 64};
            Rng wrng(3);
            core::ModuleExecutor ex(cfg, 3, wrng);
            Rng srng(4);
            core::ModuleResult r =
                ex.run(state, core::PipelineKind::Delayed, srng);
            if (!ref)
                ref = r.out.features;
            else
                EXPECT_EQ(ref->maxAbsDiff(r.out.features), 0.0f)
                    << "backend " << backendName(b);
        }
    }
}

} // namespace
} // namespace mesorasi::neighbor
