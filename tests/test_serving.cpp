/**
 * @file
 * Tests for the serving front door (serve::ServingEngine) and the
 * machinery under it.
 *
 * The load-bearing contract: serving a cloud through the async queue /
 * dynamic batcher / sharded context pools produces logits bitwise
 * identical to a direct CompiledEngine::execute with the same seed —
 * for every combination of the batching knobs, under fault soak, and
 * through shutdown. Also covers the typed queue-full backpressure, the
 * ContextPool capacity bound, and the BatchRunner graph-path per-item
 * fault isolation (the PR 9 gap).
 */
#include <gtest/gtest.h>

#include <cstring>
#include <stdexcept>

#include "common/fault_injection.hpp"
#include "core/batch_runner.hpp"
#include "core/plan/plan_compiler.hpp"
#include "geom/datasets.hpp"
#include "neighbor/search_backend.hpp"
#include "serve/serving_engine.hpp"

namespace mesorasi::serve {
namespace {

core::NetworkConfig
smallNetwork()
{
    core::NetworkConfig cfg;
    cfg.name = "tiny-pnpp";
    cfg.task = core::Task::Classification;
    cfg.numInputPoints = 256;
    cfg.numClasses = 10;

    core::ModuleConfig sa1;
    sa1.name = "sa1";
    sa1.numCentroids = 128;
    sa1.k = 16;
    sa1.search = core::SearchKind::Ball;
    sa1.radius = 0.25f;
    sa1.mlpWidths = {16, 32};
    cfg.modules.push_back(sa1);

    core::ModuleConfig sa2;
    sa2.name = "sa2";
    sa2.numCentroids = 32;
    sa2.k = 8;
    sa2.search = core::SearchKind::Knn;
    sa2.mlpWidths = {32, 64};
    cfg.modules.push_back(sa2);

    core::ModuleConfig global;
    global.name = "global";
    global.search = core::SearchKind::Global;
    global.mlpWidths = {64};
    cfg.modules.push_back(global);

    cfg.headWidths = {32};
    return cfg;
}

std::vector<geom::PointCloud>
someClouds(int32_t count, int32_t numPoints)
{
    geom::ModelNetSim sim(33, numPoints);
    std::vector<geom::PointCloud> clouds;
    for (int32_t i = 0; i < count; ++i)
        clouds.push_back(sim.sample().cloud);
    return clouds;
}

bool
bitwiseEqual(const tensor::Tensor &a, const tensor::Tensor &b)
{
    return a.rows() == b.rows() && a.cols() == b.cols() &&
           std::memcmp(a.data(), b.data(),
                       static_cast<size_t>(a.rows()) *
                           static_cast<size_t>(a.cols()) *
                           sizeof(float)) == 0;
}

/** Direct (no serving layer) logits per cloud, seed = seedBase + i. */
std::vector<tensor::Tensor>
directLogits(const core::plan::CompiledEngine &engine,
             const std::vector<geom::PointCloud> &clouds,
             uint64_t seedBase)
{
    std::vector<tensor::Tensor> out;
    auto ctx = engine.makeContext();
    for (size_t i = 0; i < clouds.size(); ++i)
        out.push_back(engine.execute(
            clouds[i], seedBase + static_cast<uint64_t>(i), *ctx));
    return out;
}

TEST(ServingEngine, KnobSweepIsBitwiseIdenticalToDirectExecute)
{
    core::NetworkExecutor exec(smallNetwork(), /*weightSeed=*/1);
    core::plan::CompiledEngine engine = core::plan::PlanCompiler::compile(
        exec, core::PipelineKind::Delayed);
    auto clouds = someClouds(10, 256);
    const uint64_t seedBase = 7;
    auto direct = directLogits(engine, clouds, seedBase);

    struct Knobs
    {
        int32_t maxBatch;
        int64_t maxWaitUs;
        int32_t shards;
        int32_t threads;
    };
    // Batch-of-1 greedy, coalescing single shard, multi-shard
    // multi-worker, and a shard count that does not divide the request
    // count — a request's logits must not depend on any of it.
    for (const Knobs &k : {Knobs{1, 0, 1, 1}, Knobs{4, 500, 1, 2},
                           Knobs{8, 2000, 2, 2}, Knobs{3, 0, 3, 1}}) {
        ServingOptions opts;
        opts.maxBatch = k.maxBatch;
        opts.maxWaitUs = k.maxWaitUs;
        opts.numShards = k.shards;
        opts.threadsPerShard = k.threads;
        ServingEngine server(engine, opts);

        std::vector<Ticket> tickets;
        for (size_t i = 0; i < clouds.size(); ++i)
            tickets.push_back(server.submit(
                clouds[i], seedBase + static_cast<uint64_t>(i)));
        for (size_t i = 0; i < tickets.size(); ++i) {
            tickets[i].wait();
            ASSERT_TRUE(tickets[i].status().isOk())
                << "request " << i << ": "
                << tickets[i].status().message();
            EXPECT_TRUE(bitwiseEqual(tickets[i].logits(), direct[i]))
                << "request " << i << " diverged under maxBatch="
                << k.maxBatch << " maxWaitUs=" << k.maxWaitUs
                << " shards=" << k.shards;
            EXPECT_GE(tickets[i].batchSize(), 1);
            EXPECT_LE(tickets[i].batchSize(), k.maxBatch);
            EXPECT_GE(tickets[i].shard(), 0);
            EXPECT_LT(tickets[i].shard(), k.shards);
            EXPECT_GE(tickets[i].latencyMs(), 0.0);
        }
        ServingStats stats = server.stats();
        EXPECT_EQ(stats.submitted, clouds.size());
        EXPECT_EQ(stats.served, clouds.size());
        EXPECT_EQ(stats.failed, 0u);
        EXPECT_EQ(stats.rejected, 0u);
        EXPECT_GE(stats.batches, 1u);
        EXPECT_EQ(stats.batchSizes.total(), stats.batches);
    }
}

TEST(ServingEngine, QueueFullBackpressureIsTypedAndImmediate)
{
    core::NetworkExecutor exec(smallNetwork(), 1);
    core::plan::CompiledEngine engine = core::plan::PlanCompiler::compile(
        exec, core::PipelineKind::Delayed);
    auto clouds = someClouds(5, 256);
    auto direct = directLogits(engine, clouds, 3);

    ServingOptions opts;
    opts.numShards = 1;
    opts.threadsPerShard = 1;
    opts.queueCapacity = 2;
    opts.maxBatch = 2;
    opts.startPaused = true; // workers parked: the queue must fill
    ServingEngine server(engine, opts);

    std::vector<Ticket> queued;
    queued.push_back(server.submit(clouds[0], 3));
    queued.push_back(server.submit(clouds[1], 4));
    EXPECT_FALSE(queued[0].ready());
    EXPECT_FALSE(queued[1].ready());

    // Queue is at capacity: overload completes synchronously with the
    // typed backpressure status instead of buffering without bound.
    for (size_t i = 2; i < clouds.size(); ++i) {
        Ticket t = server.submit(clouds[i], 3 + static_cast<uint64_t>(i));
        ASSERT_TRUE(t.ready());
        EXPECT_EQ(t.status().code(), StatusCode::ResourceExhausted);
        EXPECT_EQ(t.shard(), -1);
    }

    server.resume();
    for (size_t i = 0; i < queued.size(); ++i) {
        queued[i].wait();
        ASSERT_TRUE(queued[i].status().isOk());
        EXPECT_TRUE(bitwiseEqual(queued[i].logits(), direct[i]));
    }
    ServingStats stats = server.stats();
    EXPECT_EQ(stats.submitted, 5u);
    EXPECT_EQ(stats.served, 2u);
    EXPECT_EQ(stats.rejected, 3u);
}

TEST(ServingEngine, PausedFillProducesDeterministicBatchSizes)
{
    core::NetworkExecutor exec(smallNetwork(), 1);
    core::plan::CompiledEngine engine = core::plan::PlanCompiler::compile(
        exec, core::PipelineKind::Delayed);
    auto clouds = someClouds(7, 256);

    ServingOptions opts;
    opts.numShards = 1;
    opts.threadsPerShard = 1;
    opts.maxBatch = 4;
    opts.maxWaitUs = 0; // greedy: drain whatever is queued
    opts.startPaused = true;
    ServingEngine server(engine, opts);

    std::vector<Ticket> tickets;
    for (size_t i = 0; i < clouds.size(); ++i)
        tickets.push_back(
            server.submit(clouds[i], 11 + static_cast<uint64_t>(i)));
    server.resume();
    for (Ticket &t : tickets)
        t.wait();

    // 7 queued requests, one greedy worker, maxBatch 4: exactly one
    // batch of 4 and one of 3.
    ServingStats stats = server.stats();
    EXPECT_EQ(stats.batches, 2u);
    EXPECT_EQ(stats.batchSizes.count(4), 1u);
    EXPECT_EQ(stats.batchSizes.count(3), 1u);
    EXPECT_DOUBLE_EQ(stats.meanBatchSize(), 3.5);
}

TEST(ServingEngine, FaultSoakKeepsSurvivorsBitwiseClean)
{
    core::NetworkExecutor exec(smallNetwork(), 1);
    core::plan::CompiledEngine engine = core::plan::PlanCompiler::compile(
        exec, core::PipelineKind::Delayed);
    auto clouds = someClouds(12, 256);
    const uint64_t seedBase = 21;
    auto direct = directLogits(engine, clouds, seedBase);

    for (uint64_t faultSeed = 1; faultSeed <= 4; ++faultSeed) {
        std::vector<Ticket> tickets;
        {
            // Armed for the serving window only, firing once per site
            // at a seed-derived hit. Faults can land in context
            // construction, plan steps, workspace growth, the pool
            // task — all must surface as typed per-ticket statuses
            // while the engine keeps serving. plan.nan_poison is
            // deliberately not armed: a mid-plan NaN can wash out
            // through max-pooling into finite-but-wrong logits with an
            // Ok status (detected only when it reaches the logits), so
            // it cannot back a survivors-are-bitwise-clean assertion.
            fault::ScopedArm arm(
                faultSeed,
                std::string(fault::kThreadPoolTask) + "," +
                    fault::kPlanStepThrow + "," + fault::kArenaAlloc +
                    "," + fault::kWorkspaceGrow);
            ServingOptions opts;
            opts.numShards = 2;
            opts.threadsPerShard = 2;
            opts.maxBatch = 4;
            ServingEngine server(engine, opts);
            for (size_t i = 0; i < clouds.size(); ++i)
                tickets.push_back(server.submit(
                    clouds[i], seedBase + static_cast<uint64_t>(i)));
            for (Ticket &t : tickets)
                t.wait();

            // The engine survives its faults: a fresh request after
            // the soak traffic still serves (sites fire only once).
            Ticket after = server.submit(clouds[0], seedBase);
            after.wait();
            if (after.status().isOk()) {
                EXPECT_TRUE(bitwiseEqual(after.logits(), direct[0]));
            }
        }
        for (size_t i = 0; i < tickets.size(); ++i) {
            ASSERT_TRUE(tickets[i].ready());
            if (tickets[i].status().isOk()) {
                EXPECT_TRUE(bitwiseEqual(tickets[i].logits(), direct[i]))
                    << "survivor " << i << " not bitwise clean under "
                    << "fault seed " << faultSeed;
            } else {
                EXPECT_NE(tickets[i].status().code(), StatusCode::Ok);
                EXPECT_FALSE(tickets[i].status().message().empty());
            }
        }
    }
}

TEST(ServingEngine, ShutdownDrainsInFlightTickets)
{
    core::NetworkExecutor exec(smallNetwork(), 1);
    core::plan::CompiledEngine engine = core::plan::PlanCompiler::compile(
        exec, core::PipelineKind::Delayed);
    auto clouds = someClouds(6, 256);
    auto direct = directLogits(engine, clouds, 31);

    ServingOptions opts;
    opts.numShards = 2;
    opts.threadsPerShard = 1;
    opts.maxBatch = 4;
    opts.startPaused = true;
    ServingEngine server(engine, opts);

    std::vector<Ticket> tickets;
    for (size_t i = 0; i < clouds.size(); ++i)
        tickets.push_back(
            server.submit(clouds[i], 31 + static_cast<uint64_t>(i)));

    // Shutdown with every request still queued (workers parked): the
    // drain serves them all with real results before joining.
    server.shutdown();
    for (size_t i = 0; i < tickets.size(); ++i) {
        ASSERT_TRUE(tickets[i].ready());
        ASSERT_TRUE(tickets[i].status().isOk());
        EXPECT_TRUE(bitwiseEqual(tickets[i].logits(), direct[i]));
    }

    Ticket late = server.submit(clouds[0], 31);
    ASSERT_TRUE(late.ready());
    EXPECT_EQ(late.status().code(), StatusCode::Cancelled);
    EXPECT_GE(server.stats().cancelled, 1u);
    EXPECT_TRUE(server.stopped());
}

TEST(ContextPool, CapacityBoundsCheckoutsAndTryAcquireNeverBlocks)
{
    core::NetworkExecutor exec(smallNetwork(), 1);
    core::plan::CompiledEngine engine = core::plan::PlanCompiler::compile(
        exec, core::PipelineKind::Delayed);

    core::plan::ContextPool bounded(engine, /*capacity=*/2);
    EXPECT_EQ(bounded.capacity(), 2);
    auto a = bounded.tryAcquire();
    auto b = bounded.tryAcquire();
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(bounded.outstanding(), 2);
    // Fully checked out: the non-blocking path reports exhaustion
    // instead of building a third context or waiting.
    EXPECT_EQ(bounded.tryAcquire(), nullptr);
    bounded.release(std::move(a));
    auto c = bounded.tryAcquire();
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(bounded.created(), 2);
    bounded.release(std::move(b));
    bounded.release(std::move(c));
    EXPECT_EQ(bounded.outstanding(), 0);

    // Historical default: capacity 0 = unbounded, tryAcquire always
    // yields a context.
    core::plan::ContextPool unbounded(engine);
    std::vector<std::unique_ptr<core::plan::ExecutionContext>> held;
    for (int i = 0; i < 3; ++i) {
        held.push_back(unbounded.tryAcquire());
        ASSERT_NE(held.back(), nullptr);
    }
    EXPECT_EQ(unbounded.created(), 3);
}

// --- Satellite regression: graph-path per-item fault isolation -------

// A backend that throws when the point set starts with the sentinel
// coordinates below — deterministic per-cloud failure injection for
// the combined-stage-graph batch path (the backend is built from the
// module's input points, so exactly the poisoned cloud trips it).
constexpr float kTripX = 0.03125f, kTripY = -0.03125f, kTripZ = 0.65625f;

TEST(BatchRunner, GraphParallelModeIsolatesPerItemFailures)
{
    neighbor::registerSearchBackend(
        "tripwire",
        [](const neighbor::PointsView &p,
           const neighbor::SearchHints &h) {
            if (p.size() > 0 && p.row(0)[0] == kTripX &&
                p.row(0)[1] == kTripY && p.row(0)[2] == kTripZ)
                throw std::runtime_error(
                    "tripwire backend: poisoned cloud");
            return neighbor::makeBackendByName("brute_force", p, h);
        });

    core::NetworkConfig cfg = smallNetwork();
    cfg.modules[0].customBackend = "tripwire";
    core::NetworkExecutor exec(cfg, 1);

    auto clean = someClouds(6, 256);
    auto poisoned = clean;
    poisoned[2][0] = geom::Point3{kTripX, kTripY, kTripZ};

    core::BatchRunner parallel(exec, /*numThreads=*/4);
    core::BatchResult healthy =
        parallel.run(clean, core::PipelineKind::Delayed, 7);
    for (const auto &item : healthy.items)
        ASSERT_TRUE(item.status.isOk());

    core::BatchResult faulted =
        parallel.run(poisoned, core::PipelineKind::Delayed, 7);
    ASSERT_EQ(faulted.items.size(), 6u);
    EXPECT_EQ(faulted.numFailed(), 1);
    EXPECT_FALSE(faulted.items[2].status.isOk());
    EXPECT_EQ(faulted.items[2].status.code(), StatusCode::ExecFault);
    EXPECT_EQ(faulted.items[2].predicted, -1);
    for (size_t i = 0; i < faulted.items.size(); ++i) {
        if (i == 2)
            continue;
        // The healthy clouds complete bitwise identical to the
        // fault-free batch: one cloud's stage failure cancels only its
        // own downstream stages.
        EXPECT_TRUE(faulted.items[i].status.isOk()) << "item " << i;
        EXPECT_TRUE(bitwiseEqual(faulted.items[i].run.logits,
                                 healthy.items[i].run.logits))
            << "item " << i;
    }

    // Same contract in the sequential reference mode.
    core::BatchRunner sequential(exec, /*numThreads=*/1);
    core::BatchResult seq =
        sequential.run(poisoned, core::PipelineKind::Delayed, 7);
    EXPECT_EQ(seq.numFailed(), 1);
    EXPECT_FALSE(seq.items[2].status.isOk());
    for (size_t i = 0; i < seq.items.size(); ++i) {
        if (i != 2) {
            EXPECT_TRUE(bitwiseEqual(seq.items[i].run.logits,
                                     healthy.items[i].run.logits));
        }
    }
}

} // namespace
} // namespace mesorasi::serve
