/**
 * @file
 * Bitwise parity suite for the portable SIMD kernel layer.
 *
 * The vector kernels (common/simd.hpp consumers) carry a hard
 * contract: byte-for-byte identical results to their forced-scalar
 * fallbacks — same accumulation order, mul+add instead of FMA, and
 * std::max's exact NaN / signed-zero semantics. Every test here runs
 * the same computation twice, once with simd::setForceScalar(true) and
 * once with the vector path, and memcmp's the outputs:
 *
 *  - matmul / matmulInto across odd (non-multiple-of-lane) column
 *    counts, row-block remainders, sparse inputs (the zero-skip), and
 *    non-finite values in B;
 *  - max-reduce / gather-max-reduce including NaN propagation from the
 *    first gathered row and NaN-dropping from later rows;
 *  - bias / ReLU / batchnorm / subtract epilogues including NaN and
 *    negative zero;
 *  - batched neighbor dist2 kernels (3-D SoA fast path and the
 *    generic-dimension fallback);
 *  - all 3 neighbor backends, query-level and end-to-end through all 3
 *    pipelines of a ModuleExecutor.
 *
 * Under a -DMESORASI_FORCE_SCALAR=1 build both paths are the scalar
 * one and the suite degenerates to self-consistency, which is exactly
 * what that CI leg is for.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "common/rng.hpp"
#include "common/simd.hpp"
#include "common/workspace.hpp"
#include "core/pipeline.hpp"
#include "geom/shapes.hpp"
#include "neighbor/dist_batch.hpp"
#include "neighbor/search_backend.hpp"
#include "tensor/init.hpp"
#include "tensor/ops.hpp"

namespace mesorasi {
namespace {

using tensor::Tensor;

constexpr float kNan = std::numeric_limits<float>::quiet_NaN();
constexpr float kInf = std::numeric_limits<float>::infinity();

/** Restores the force-scalar flag even if an assertion throws. */
struct ScalarGuard
{
    explicit ScalarGuard(bool force) { simd::setForceScalar(force); }
    ~ScalarGuard() { simd::setForceScalar(false); }
};

bool
bitwiseEqual(const Tensor &a, const Tensor &b)
{
    return a.rows() == b.rows() && a.cols() == b.cols() &&
           std::memcmp(a.data(), b.data(),
                       static_cast<size_t>(a.bytes())) == 0;
}

Tensor
randomTensor(uint64_t seed, int32_t rows, int32_t cols, float lo = -2.0f,
             float hi = 2.0f)
{
    Rng rng(seed);
    return tensor::uniform(rng, rows, cols, lo, hi);
}

/** Sprinkle exact zeros so the matmul zero-skip branch is exercised. */
void
sprinkleZeros(Tensor &t, uint64_t seed, double frac = 0.3)
{
    Rng rng(seed);
    for (int32_t r = 0; r < t.rows(); ++r)
        for (int32_t c = 0; c < t.cols(); ++c)
            if (rng.uniform() < frac)
                t(r, c) = 0.0f;
}

// --- Matmul ------------------------------------------------------------

TEST(SimdParity, MatmulAcrossShapes)
{
    // Odd column counts cover every vector-tile tail (4W, W, scalar);
    // odd row counts cover the row-block remainder.
    const int32_t colCases[] = {1, 3, 5, 8, 17, 31, 32, 33, 127, 128};
    const int32_t rowCases[] = {1, 2, 3, 7, 64};
    uint64_t seed = 100;
    for (int32_t m : colCases) {
        for (int32_t n : rowCases) {
            int32_t k = 24;
            Tensor a = randomTensor(seed++, n, k);
            Tensor b = randomTensor(seed++, k, m);
            sprinkleZeros(a, seed++);

            Tensor scalar, simdOut;
            {
                ScalarGuard g(true);
                scalar = tensor::matmul(a, b);
            }
            simdOut = tensor::matmul(a, b);
            EXPECT_TRUE(bitwiseEqual(scalar, simdOut))
                << n << "x" << k << " * " << k << "x" << m;
        }
    }
}

TEST(SimdParity, MatmulWithNonFiniteWeights)
{
    // The zero-skip makes 0 * inf and 0 * NaN visible: skipping adds
    // nothing where a naive multiply would add NaN. Both paths must
    // skip identically.
    Tensor a = randomTensor(1, 9, 12);
    Tensor b = randomTensor(2, 12, 21);
    a(0, 3) = 0.0f;
    a(4, 7) = 0.0f;
    b(3, 5) = kInf;
    b(7, 2) = kNan;
    b(3, 20) = -kInf;

    Tensor scalar, simdOut;
    {
        ScalarGuard g(true);
        scalar = tensor::matmul(a, b);
    }
    simdOut = tensor::matmul(a, b);
    EXPECT_TRUE(bitwiseEqual(scalar, simdOut));
}

TEST(SimdParity, MatmulIntoStridedBlocks)
{
    Tensor a = randomTensor(3, 13, 19);
    Tensor b = randomTensor(4, 19, 29);
    int64_t dstStride = b.cols() + 7;
    std::vector<float> scalar(static_cast<size_t>(a.rows()) * dstStride,
                              -5.0f);
    std::vector<float> simdOut = scalar;
    {
        ScalarGuard g(true);
        tensor::matmulInto(scalar.data(), dstStride, a.data(), a.cols(),
                           a.rows(), b);
    }
    tensor::matmulInto(simdOut.data(), dstStride, a.data(), a.cols(),
                       a.rows(), b);
    EXPECT_EQ(std::memcmp(scalar.data(), simdOut.data(),
                          scalar.size() * sizeof(float)),
              0);
}

// --- Reductions --------------------------------------------------------

TEST(SimdParity, MaxReduceWithNanAndOddCols)
{
    for (int32_t cols : {1, 5, 16, 33, 130}) {
        Tensor x = randomTensor(10 + cols, 40, cols);
        // NaN in the middle of a later row: dropped (std::max keeps the
        // left operand on unordered compares).
        x(17, cols / 2) = kNan;
        // NaN in row 0: propagates through the whole-tensor reduce,
        // which seeds from the first row.
        x(0, cols - 1) = kNan;
        x(3, 0) = -0.0f;

        Tensor scalarAll, simdAll, scalarList, simdList;
        std::vector<int32_t> rows{0, 3, 17, 17, 21};
        {
            ScalarGuard g(true);
            scalarAll = tensor::maxReduceRows(x);
            scalarList = tensor::maxReduceRows(x, rows);
        }
        simdAll = tensor::maxReduceRows(x);
        simdList = tensor::maxReduceRows(x, rows);
        EXPECT_TRUE(bitwiseEqual(scalarAll, simdAll)) << cols;
        EXPECT_TRUE(bitwiseEqual(scalarList, simdList)) << cols;

        // NaN actually propagated (sanity that the case is exercised).
        EXPECT_TRUE(std::isnan(simdAll(0, cols - 1)));

        std::vector<float> scalarInto(cols), simdInto(cols);
        {
            ScalarGuard g(true);
            tensor::maxReduceRowsInto(scalarInto.data(), x, 15, 10);
        }
        tensor::maxReduceRowsInto(simdInto.data(), x, 15, 10);
        EXPECT_EQ(std::memcmp(scalarInto.data(), simdInto.data(),
                              scalarInto.size() * sizeof(float)),
                  0)
            << cols;

        std::vector<float> scalarGather(cols), simdGather(cols);
        {
            ScalarGuard g(true);
            tensor::gatherMaxReduceInto(scalarGather.data(), x, rows);
        }
        tensor::gatherMaxReduceInto(simdGather.data(), x, rows);
        EXPECT_EQ(std::memcmp(scalarGather.data(), simdGather.data(),
                              scalarGather.size() * sizeof(float)),
                  0)
            << cols;
    }
}

TEST(SimdParity, GatherMaxReducePropagatesFirstRowNan)
{
    Tensor x = randomTensor(60, 8, 11);
    x(5, 4) = kNan;
    // Gathering row 5 first seeds the reduce with the NaN, which must
    // then survive every later max in both paths.
    std::vector<int32_t> rows{5, 1, 2};
    std::vector<float> scalar(x.cols()), simdOut(x.cols());
    {
        ScalarGuard g(true);
        tensor::gatherMaxReduceInto(scalar.data(), x, rows);
    }
    tensor::gatherMaxReduceInto(simdOut.data(), x, rows);
    EXPECT_TRUE(std::isnan(simdOut[4]));
    EXPECT_EQ(std::memcmp(scalar.data(), simdOut.data(),
                          scalar.size() * sizeof(float)),
              0);
}

// --- Elementwise epilogues ---------------------------------------------

TEST(SimdParity, BiasReluBatchnormSubtract)
{
    for (int32_t cols : {3, 16, 37}) {
        Tensor base = randomTensor(70 + cols, 25, cols);
        base(1, 0) = kNan;
        base(2, cols - 1) = -0.0f;
        base(3, cols / 2) = -kInf;
        Tensor bias = randomTensor(71, 1, cols);
        Tensor gamma = randomTensor(72, 1, cols, 0.5f, 1.5f);
        Tensor beta = randomTensor(73, 1, cols);
        Tensor mean = randomTensor(74, 1, cols);
        Tensor var = randomTensor(75, 1, cols, 0.1f, 2.0f);

        auto runAll = [&](Tensor x) {
            tensor::addBiasInPlace(x, bias);
            tensor::reluInPlace(x);
            tensor::batchNormInPlace(x, gamma, beta, mean, var);
            tensor::subtractRowInPlace(x, bias);
            Tensor fusedEpilogue = x;
            tensor::biasReluBlockInPlace(fusedEpilogue.data(),
                                         fusedEpilogue.cols(),
                                         fusedEpilogue.rows(),
                                         fusedEpilogue.cols(),
                                         bias.row(0),
                                         /*applyRelu=*/true);
            return fusedEpilogue;
        };
        Tensor scalar, simdOut;
        {
            ScalarGuard g(true);
            scalar = runAll(base);
        }
        simdOut = runAll(base);
        EXPECT_TRUE(bitwiseEqual(scalar, simdOut)) << cols;
    }
}

TEST(SimdParity, FusedBiasReluMatchesSeparatePasses)
{
    Tensor x = randomTensor(80, 30, 23);
    x(0, 0) = -0.0f;
    x(1, 5) = kNan;
    Tensor bias = randomTensor(81, 1, 23);

    Tensor separate = x;
    tensor::addBiasInPlace(separate, bias);
    tensor::reluInPlace(separate);

    Tensor fused = x;
    tensor::biasReluBlockInPlace(fused.data(), fused.cols(), fused.rows(),
                                 fused.cols(), bias.row(0), true);
    EXPECT_TRUE(bitwiseEqual(separate, fused));
}

// --- Batched neighbor distances ----------------------------------------

TEST(SimdParity, Dist2BatchMatchesDist2To)
{
    for (int32_t dim : {3, 8}) {
        for (int32_t n : {1, 2, 4, 7, 33, 100}) {
            Tensor pts = randomTensor(200 + dim * 10 + n, n, dim);
            neighbor::PointsView view(pts.data(), n, dim);
            Tensor q = randomTensor(90, 1, dim);

            Rng rng(91);
            std::vector<int32_t> idx(n);
            for (int32_t i = 0; i < n; ++i)
                idx[i] = static_cast<int32_t>(rng.uniformInt(0, n - 1));

            std::vector<float> ref(n), scalar(n), simdOut(n);
            for (int32_t i = 0; i < n; ++i)
                ref[i] = view.dist2To(idx[i], q.row(0));
            {
                ScalarGuard g(true);
                neighbor::dist2Batch(view, idx.data(), n, q.row(0),
                                     scalar.data());
            }
            neighbor::dist2Batch(view, idx.data(), n, q.row(0),
                                 simdOut.data());
            EXPECT_EQ(std::memcmp(ref.data(), scalar.data(),
                                  ref.size() * sizeof(float)),
                      0)
                << "dim " << dim << " n " << n;
            EXPECT_EQ(std::memcmp(ref.data(), simdOut.data(),
                                  ref.size() * sizeof(float)),
                      0)
                << "dim " << dim << " n " << n;

            std::vector<float> range(n);
            neighbor::dist2Range(view, 0, n, q.row(0), range.data());
            for (int32_t i = 0; i < n; ++i)
                EXPECT_EQ(range[i], view.dist2To(i, q.row(0)));
        }
    }
}

TEST(SimdParity, BackendsReturnIdenticalNeighbors)
{
    Rng rng(7);
    geom::ShapeParams p{600, 0.0f, -1};
    geom::PointCloud cloud = geom::makeTorus(rng, p, {}, 0.7f, 0.25f);
    neighbor::FlatPoints flat(cloud);

    std::vector<int32_t> queries;
    for (int32_t i = 0; i < 600; i += 13)
        queries.push_back(i);

    for (const char *name : {"brute_force", "grid", "kdtree"}) {
        neighbor::SearchHints hints;
        hints.k = 12;
        hints.radius = 0.25f;
        auto backend =
            neighbor::makeBackendByName(name, flat.view(), hints);

        std::vector<std::vector<int32_t>> scalarKnn, scalarBall;
        {
            ScalarGuard g(true);
            for (int32_t q : queries) {
                scalarKnn.push_back(backend->knn(flat.view().row(q), 12));
                scalarBall.push_back(
                    backend->radius(flat.view().row(q), 0.25f, 16));
            }
        }
        for (size_t i = 0; i < queries.size(); ++i) {
            EXPECT_EQ(scalarKnn[i],
                      backend->knn(flat.view().row(queries[i]), 12))
                << name;
            EXPECT_EQ(scalarBall[i],
                      backend->radius(flat.view().row(queries[i]), 0.25f,
                                      16))
                << name;
        }
    }
}

// --- End-to-end: backends x pipelines ----------------------------------

TEST(SimdParity, ModulePipelinesBitwiseAcrossBackends)
{
    core::ModuleState in;
    {
        Rng rng(17);
        geom::ShapeParams p{384, 0.0f, -1};
        geom::PointCloud cloud = geom::makeTorus(rng, p, {}, 0.7f, 0.25f);
        in.coords = Tensor(384, 3);
        for (int32_t i = 0; i < 384; ++i) {
            in.coords(i, 0) = cloud[i].x;
            in.coords(i, 1) = cloud[i].y;
            in.coords(i, 2) = cloud[i].z;
        }
        in.features = in.coords;
    }

    const neighbor::Backend backends[] = {neighbor::Backend::BruteForce,
                                          neighbor::Backend::Grid,
                                          neighbor::Backend::KdTree};
    const core::PipelineKind pipelines[] = {
        core::PipelineKind::Original, core::PipelineKind::Delayed,
        core::PipelineKind::LtdDelayed};

    for (neighbor::Backend backend : backends) {
        core::ModuleConfig cfg;
        cfg.name = "simd_parity";
        cfg.numCentroids = 96;
        cfg.k = 16;
        cfg.search = core::SearchKind::Ball;
        cfg.radius = 0.3f;
        cfg.mlpWidths = {32, 48};
        cfg.backend = backend;
        Rng wrng(23);
        core::ModuleExecutor ex(cfg, 3, wrng);

        for (core::PipelineKind kind : pipelines) {
            Tensor scalar, simdOut;
            {
                ScalarGuard g(true);
                Rng srng(29);
                scalar = ex.run(in, kind, srng).out.features;
            }
            {
                Rng srng(29);
                simdOut = ex.run(in, kind, srng).out.features;
            }
            EXPECT_TRUE(bitwiseEqual(scalar, simdOut))
                << neighbor::backendName(backend) << " / "
                << core::pipelineName(kind);
        }
    }
}

} // namespace
} // namespace mesorasi
