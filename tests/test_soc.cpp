/**
 * @file
 * Tests for the whole-SoC scheduler: mapping presets, overlap
 * semantics, and the paper's headline orderings (baseline < Mesorasi-SW
 * < Mesorasi-HW, NSE helps further).
 */
#include <gtest/gtest.h>

#include "common/check.hpp"

#include "core/networks.hpp"
#include "geom/datasets.hpp"
#include "hwsim/soc.hpp"

namespace mesorasi::hwsim {
namespace {

using core::PipelineKind;

struct Fixture
{
    core::NetworkConfig cfg = core::zoo::pointnetppClassification();
    core::NetworkExecutor exec{cfg, 1};
    core::RunResult orig;
    core::RunResult delayed;
    Soc soc{SocConfig::defaultTx2()};

    Fixture()
    {
        geom::ModelNetSim sim(2, cfg.numInputPoints);
        geom::PointCloud cloud = sim.sample(1).cloud;
        orig = exec.run(cloud, PipelineKind::Original, 3);
        delayed = exec.run(cloud, PipelineKind::Delayed, 3);
    }
};

Fixture &
fixture()
{
    static Fixture f;
    return f;
}

TEST(Mapping, Presets)
{
    EXPECT_EQ(Mapping::gpuOnly().feature, Unit::Gpu);
    EXPECT_EQ(Mapping::baselineGpuNpu().feature, Unit::Npu);
    EXPECT_FALSE(Mapping::baselineGpuNpu().overlapSearchFeature);
    EXPECT_EQ(Mapping::mesorasiSw().aggregation, Unit::Gpu);
    EXPECT_EQ(Mapping::mesorasiHw().aggregation, Unit::Au);
    EXPECT_EQ(Mapping::mesorasiHw().withNse().search, Unit::Nse);
}

TEST(Soc, GpuOnlyTotalIsSerialSum)
{
    auto &f = fixture();
    SocReport r = f.soc.simulate(f.orig, Mapping::gpuOnly());
    EXPECT_NEAR(r.totalMs, r.phases.serialTotal(), 1e-9);
    EXPECT_GT(r.totalMs, 0.0);
    EXPECT_GT(r.gpuEnergyMj, 0.0);
    EXPECT_EQ(r.npuEnergyMj, 0.0);
}

TEST(Soc, BaselineFasterThanGpuOnly)
{
    // Paper Sec. VII-D: the GPU+NPU baseline is ~1.8x faster than GPU.
    auto &f = fixture();
    SocReport gpu = f.soc.simulate(f.orig, Mapping::gpuOnly());
    SocReport base = f.soc.simulate(f.orig, Mapping::baselineGpuNpu());
    EXPECT_LT(base.totalMs, gpu.totalMs);
    EXPECT_LT(base.totalEnergyMj(), gpu.totalEnergyMj());
}

TEST(Soc, MesorasiSwFasterThanBaseline)
{
    auto &f = fixture();
    SocReport base = f.soc.simulate(f.orig, Mapping::baselineGpuNpu());
    SocReport sw = f.soc.simulate(f.delayed, Mapping::mesorasiSw());
    EXPECT_LT(sw.totalMs, base.totalMs);
}

TEST(Soc, MesorasiHwAggregationFasterThanSw)
{
    auto &f = fixture();
    SocReport sw = f.soc.simulate(f.delayed, Mapping::mesorasiSw());
    SocReport hw = f.soc.simulate(f.delayed, Mapping::mesorasiHw());
    EXPECT_LT(hw.phases.aggregationMs, sw.phases.aggregationMs);
    EXPECT_LE(hw.totalMs, sw.totalMs);
    EXPECT_GT(hw.auEnergyMj, 0.0);
    EXPECT_GT(hw.auStats.cycles, 0);
}

TEST(Soc, OverlapHidesShorterPhase)
{
    auto &f = fixture();
    SocReport sw = f.soc.simulate(f.delayed, Mapping::mesorasiSw());
    // With overlap the total is strictly less than the serial sum
    // whenever both N and F are nonzero.
    EXPECT_LT(sw.totalMs, sw.phases.serialTotal());
}

TEST(Soc, NoOverlapOnSameUnit)
{
    // GPU-only delayed: the paper observed TX2 cannot co-run both
    // kernels, so same-unit mappings must not overlap.
    auto &f = fixture();
    SocReport r = f.soc.simulate(f.delayed, Mapping::gpuOnly(true));
    EXPECT_NEAR(r.totalMs, r.phases.serialTotal(), 1e-9);
}

TEST(Soc, NseSpeedsUpSearch)
{
    auto &f = fixture();
    SocReport hw = f.soc.simulate(f.delayed, Mapping::mesorasiHw());
    SocReport nse =
        f.soc.simulate(f.delayed, Mapping::mesorasiHw().withNse());
    EXPECT_LT(nse.phases.searchMs, hw.phases.searchMs / 10.0);
    EXPECT_LE(nse.totalMs, hw.totalMs);
    EXPECT_GT(nse.nseEnergyMj, 0.0);
}

TEST(Soc, DelayedCutsDramTraffic)
{
    auto &f = fixture();
    SocReport base = f.soc.simulate(f.orig, Mapping::baselineGpuNpu());
    SocReport hw = f.soc.simulate(f.delayed, Mapping::mesorasiHw());
    EXPECT_LT(hw.dramBytes, base.dramBytes);
    EXPECT_LT(hw.dramEnergyMj, base.dramEnergyMj);
}

TEST(Soc, ReportPhasesSumToBusyTime)
{
    auto &f = fixture();
    SocReport r = f.soc.simulate(f.orig, Mapping::baselineGpuNpu());
    EXPECT_GT(r.phases.searchMs, 0.0);
    EXPECT_GT(r.phases.featureMs, 0.0);
    EXPECT_GT(r.phases.aggregationMs, 0.0);
    EXPECT_GT(r.phases.otherMs, 0.0);
}

TEST(Soc, MismatchedNitIoRejected)
{
    auto &f = fixture();
    std::vector<neighbor::NeighborIndexTable> nits = f.delayed.nits;
    nits.pop_back();
    EXPECT_THROW(f.soc.simulate(f.delayed.trace, nits, f.delayed.ios,
                                Mapping::mesorasiHw()),
                 mesorasi::UsageError);
}

TEST(Soc, AllSevenNetworksSimulate)
{
    Soc soc(SocConfig::defaultTx2());
    for (const auto &cfg : core::zoo::allNetworks()) {
        core::NetworkExecutor exec(cfg, 1);
        geom::PointCloud cloud;
        if (cfg.task == core::Task::Segmentation) {
            geom::ShapeNetSim sim(5, cfg.numInputPoints);
            cloud = sim.sample(1).cloud;
        } else {
            geom::ModelNetSim sim(5, cfg.numInputPoints);
            cloud = sim.sample(1).cloud;
        }
        auto delayed = exec.run(cloud, PipelineKind::Delayed, 3);
        SocReport hw = soc.simulate(delayed, Mapping::mesorasiHw());
        EXPECT_GT(hw.totalMs, 0.0) << cfg.name;
        EXPECT_GT(hw.totalEnergyMj(), 0.0) << cfg.name;
    }
}

TEST(Soc, BiggerSystolicArrayShrinksSpeedupGap)
{
    // Fig. 21: with a larger array, feature time shrinks and the
    // Mesorasi speedup over the baseline decreases.
    auto &f = fixture();
    auto speedup = [&](int32_t sa) {
        SocConfig cfg = SocConfig::defaultTx2();
        cfg.npu.systolicRows = cfg.npu.systolicCols = sa;
        Soc soc(cfg);
        SocReport base = soc.simulate(f.orig, Mapping::baselineGpuNpu());
        SocReport hw = soc.simulate(f.delayed, Mapping::mesorasiHw());
        return base.totalMs / hw.totalMs;
    };
    EXPECT_GT(speedup(8), speedup(48));
}

} // namespace
} // namespace mesorasi::hwsim
