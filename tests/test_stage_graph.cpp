/**
 * @file
 * Tests for the stage-graph execution engine — the software realization
 * of the paper's N ‖ F overlap (Fig. 8). Three claims are load-bearing:
 *
 *  1. Structure: Delayed/Ltd graphs declare Search and Feature as
 *     independent (no edge in either direction), while Original is a
 *     chain — the delayed-aggregation dependence structure, verbatim.
 *  2. Concurrency: with >= 2 workers the scheduler genuinely runs
 *     independent stages at the same time (asserted with a rendezvous
 *     that can only complete when both stages are in flight, plus
 *     stage timestamps).
 *  3. Determinism: overlapped execution is bitwise identical to
 *     sequential execution across all 3 pipelines x all 3 neighbor
 *     backends, and stable under repeated runs — RNG decisions are
 *     pre-drawn at graph-build time, so the schedule cannot matter.
 */
#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "core/batch_runner.hpp"
#include "core/pipeline.hpp"
#include "core/scheduler.hpp"
#include "geom/datasets.hpp"
#include "geom/shapes.hpp"
#include "hwsim/soc.hpp"

namespace mesorasi::core {
namespace {

using mesorasi::Rng;
using tensor::Tensor;

ModuleState
makeState(int32_t n, uint64_t seed)
{
    Rng rng(seed);
    geom::ShapeParams p{n, 0.0f, -1};
    geom::PointCloud cloud = geom::makeTorus(rng, p, {}, 0.7f, 0.25f);
    ModuleState s;
    s.coords = Tensor(n, 3);
    for (int32_t i = 0; i < n; ++i) {
        s.coords(i, 0) = cloud[i].x;
        s.coords(i, 1) = cloud[i].y;
        s.coords(i, 2) = cloud[i].z;
    }
    s.features = s.coords;
    return s;
}

ModuleConfig
knnModule(neighbor::Backend backend = neighbor::Backend::Auto)
{
    ModuleConfig m;
    m.name = "m";
    m.numCentroids = 64;
    m.k = 8;
    m.search = SearchKind::Knn;
    m.backend = backend;
    m.mlpWidths = {16, 24};
    return m;
}

StageId
findStage(const StageGraph &g, const std::string &name)
{
    for (StageId id = 0; id < g.size(); ++id)
        if (g.stage(id).name == name)
            return id;
    ADD_FAILURE() << "no stage named " << name;
    return -1;
}

bool
sameEntries(const neighbor::NeighborIndexTable &a,
            const neighbor::NeighborIndexTable &b)
{
    if (a.size() != b.size())
        return false;
    for (int32_t i = 0; i < a.size(); ++i)
        if (a[i].centroid != b[i].centroid ||
            a[i].neighbors != b[i].neighbors)
            return false;
    return true;
}

// --- 1. Graph structure -----------------------------------------------

TEST(StageGraphStructure, DelayedHasNoSearchFeatureEdge)
{
    for (PipelineKind kind :
         {PipelineKind::Delayed, PipelineKind::LtdDelayed}) {
        Rng wrng(1);
        ModuleExecutor ex(knnModule(), 3, wrng);
        ModuleState in = makeState(256, 2);
        ModuleResult res;
        Rng srng(3);
        StageGraph g = ex.buildGraph(in, kind, srng, &res);

        StageId sample = findStage(g, "m.sample");
        StageId search = findStage(g, "m.search");
        StageId feature = findStage(g, "m.feature");
        StageId agg = findStage(g, "m.aggregate");

        // Feature is a root: it depends on nothing, and in particular
        // not on Search — the delayed-aggregation independence claim.
        EXPECT_TRUE(g.stage(feature).deps.empty()) << pipelineName(kind);
        EXPECT_FALSE(g.dependsOn(feature, search)) << pipelineName(kind);
        EXPECT_FALSE(g.dependsOn(feature, sample)) << pipelineName(kind);
        // Search only needs the centroids.
        EXPECT_EQ(g.stage(search).deps, std::vector<StageId>{sample});
        // Aggregation joins both sides.
        EXPECT_TRUE(g.dependsOn(agg, search));
        EXPECT_TRUE(g.dependsOn(agg, feature));
    }
}

TEST(StageGraphStructure, LtdTailRunsAfterAggregation)
{
    Rng wrng(5);
    ModuleExecutor ex(knnModule(), 3, wrng);
    ModuleState in = makeState(128, 6);
    ModuleResult res;
    Rng srng(7);
    StageGraph g =
        ex.buildGraph(in, PipelineKind::LtdDelayed, srng, &res);
    StageId tail = findStage(g, "m.feature.tail");
    EXPECT_TRUE(g.dependsOn(tail, findStage(g, "m.aggregate")));
    EXPECT_TRUE(g.dependsOn(tail, findStage(g, "m.search")));
    EXPECT_FALSE(g.dependsOn(findStage(g, "m.feature"),
                             findStage(g, "m.search")));
}

TEST(StageGraphStructure, OriginalIsAChain)
{
    Rng wrng(9);
    ModuleExecutor ex(knnModule(), 3, wrng);
    ModuleState in = makeState(128, 10);
    ModuleResult res;
    Rng srng(11);
    StageGraph g = ex.buildGraph(in, PipelineKind::Original, srng, &res);
    // sample → search → aggregate → feature → epilogue, transitively.
    StageId order[] = {
        findStage(g, "m.sample"), findStage(g, "m.search"),
        findStage(g, "m.aggregate"), findStage(g, "m.feature"),
        findStage(g, "m.epilogue")};
    for (size_t i = 1; i < 5; ++i)
        EXPECT_TRUE(g.dependsOn(order[i], order[i - 1])) << i;
}

TEST(StageGraphStructure, RejectsForwardDependencies)
{
    StageGraph g;
    StageId a = g.add(StageKind::Sample, "t", "a", [] {});
    EXPECT_THROW(g.add(StageKind::Search, "t", "b", [] {}, {a + 1}),
                 mesorasi::UsageError);
    EXPECT_THROW(g.add(StageKind::Search, "t", "c", [] {}, {-1}),
                 mesorasi::UsageError);
}

// --- 2. The scheduler genuinely overlaps independent stages -----------

TEST(StageScheduler, SearchAndFeatureExecuteConcurrently)
{
    // A Delayed-shaped graph whose Search and Feature bodies rendezvous:
    // each signals its own start and then blocks until it has seen the
    // other side start. Completion is only possible when the scheduler
    // has both stages in flight at once — a serializing scheduler would
    // time out. Stage timestamps must show the measured overlap too.
    ThreadPool pool(4);
    ASSERT_GE(pool.size(), 2);

    std::mutex m;
    std::condition_variable cv;
    bool searchStarted = false, featureStarted = false;
    bool searchSawFeature = false, featureSawSearch = false;
    auto rendezvous = [&](bool &mine, bool &theirs, bool &sawThem) {
        std::unique_lock<std::mutex> lock(m);
        mine = true;
        cv.notify_all();
        sawThem = cv.wait_for(lock, std::chrono::seconds(20),
                              [&] { return theirs; });
    };

    StageGraph g;
    StageId sample = g.add(StageKind::Sample, "m", "m.sample", [] {});
    StageId search = g.add(
        StageKind::Search, "m", "m.search",
        [&] {
            rendezvous(searchStarted, featureStarted, searchSawFeature);
        },
        {sample});
    StageId feature = g.add(StageKind::Feature, "m", "m.feature", [&] {
        rendezvous(featureStarted, searchStarted, featureSawSearch);
    });
    g.add(StageKind::Aggregate, "m", "m.aggregate", [] {},
          {search, feature});

    StageTimeline tl =
        StageScheduler::run(g, pool, SchedulePolicy::Overlapped);

    EXPECT_TRUE(searchSawFeature);
    EXPECT_TRUE(featureSawSearch);
    // The measured intervals overlap and the timeline exposes it.
    EXPECT_GT(tl.overlapMs(StageKind::Search, StageKind::Feature), 0.0);
    EXPECT_GT(tl.overlapFraction(StageKind::Search, StageKind::Feature),
              0.0);
}

TEST(StageScheduler, SequentialAndOverlappedRecordEveryStage)
{
    Rng wrng(13);
    ModuleExecutor ex(knnModule(), 3, wrng);
    ModuleState in = makeState(256, 14);
    ThreadPool pool(4);
    for (SchedulePolicy policy :
         {SchedulePolicy::Sequential, SchedulePolicy::Overlapped}) {
        Rng srng(15);
        ModuleResult r =
            ex.run(in, PipelineKind::Delayed, srng, pool, policy);
        ASSERT_EQ(r.timeline.stages.size(), 5u)
            << schedulePolicyName(policy);
        for (const auto &s : r.timeline.stages) {
            EXPECT_GE(s.endMs, s.startMs) << s.name;
            EXPECT_EQ(s.group, "m");
        }
        EXPECT_GT(r.timeline.wallMs, 0.0);
        EXPECT_GE(r.timeline.serializedMs(), 0.0);
        // The measured timeline feeds hwsim's phase vocabulary.
        hwsim::MeasuredTimeline mt = hwsim::summarizeMeasured(r.timeline);
        EXPECT_NEAR(mt.phases.searchMs + mt.phases.featureMs +
                        mt.phases.aggregationMs + mt.phases.otherMs,
                    mt.serializedMs, 1e-9);
    }
}

TEST(StageScheduler, PropagatesStageExceptions)
{
    ThreadPool pool(4);
    for (SchedulePolicy policy :
         {SchedulePolicy::Sequential, SchedulePolicy::Overlapped}) {
        StageGraph g;
        StageId a = g.add(StageKind::Sample, "t", "a", [] {});
        g.add(StageKind::Search, "t", "b",
              [] { MESO_REQUIRE(false, "stage failed"); }, {a});
        g.add(StageKind::Epilogue, "t", "c", [] {}, {a});
        EXPECT_THROW(StageScheduler::run(g, pool, policy),
                     mesorasi::UsageError)
            << schedulePolicyName(policy);
    }
}

// --- 3. Async determinism ---------------------------------------------

TEST(AsyncDeterminism, ModuleBitwiseIdenticalAcrossPipelinesAndBackends)
{
    ThreadPool pool(4);
    ModuleState in = makeState(512, 20);
    for (neighbor::Backend backend :
         {neighbor::Backend::BruteForce, neighbor::Backend::Grid,
          neighbor::Backend::KdTree}) {
        for (PipelineKind kind :
             {PipelineKind::Original, PipelineKind::Delayed,
              PipelineKind::LtdDelayed}) {
            ModuleConfig cfg = knnModule(backend);
            Rng wrng(21);
            ModuleExecutor ex(cfg, 3, wrng);

            Rng s1(22);
            ModuleResult seq = ex.run(in, kind, s1, pool,
                                      SchedulePolicy::Sequential);
            const char *tag = pipelineName(kind);
            SCOPED_TRACE(std::string(tag) + "/" +
                         neighbor::backendName(backend));
            // Overlapped must match sequential bitwise, run after run.
            for (int rep = 0; rep < 3; ++rep) {
                Rng s2(22);
                ModuleResult ovl = ex.run(in, kind, s2, pool,
                                          SchedulePolicy::Overlapped);
                EXPECT_EQ(seq.out.features.maxAbsDiff(ovl.out.features),
                          0.0f)
                    << "rep " << rep;
                EXPECT_EQ(seq.out.coords.maxAbsDiff(ovl.out.coords),
                          0.0f);
                EXPECT_EQ(seq.centroidIdx, ovl.centroidIdx);
                EXPECT_TRUE(sameEntries(seq.nit, ovl.nit));
            }
            // The sampler stream advances identically either way.
            Rng s3(22);
            ModuleResult again = ex.run(in, kind, s3, pool,
                                        SchedulePolicy::Overlapped);
            EXPECT_EQ(s1.uniformInt(0, 1 << 30),
                      s3.uniformInt(0, 1 << 30));
            EXPECT_EQ(seq.out.features.maxAbsDiff(again.out.features),
                      0.0f);
        }
    }
}

TEST(AsyncDeterminism, BallSearchModuleIdenticalOverlapped)
{
    // Ball queries pad underfull groups; the padding must not depend on
    // the schedule either.
    ThreadPool pool(4);
    ModuleState in = makeState(256, 30);
    for (neighbor::Backend backend :
         {neighbor::Backend::BruteForce, neighbor::Backend::Grid,
          neighbor::Backend::KdTree}) {
        ModuleConfig cfg = knnModule(backend);
        cfg.search = SearchKind::Ball;
        cfg.radius = 0.25f;
        Rng wrng(31);
        ModuleExecutor ex(cfg, 3, wrng);
        Rng s1(32), s2(32);
        ModuleResult seq = ex.run(in, PipelineKind::Delayed, s1, pool,
                                  SchedulePolicy::Sequential);
        ModuleResult ovl = ex.run(in, PipelineKind::Delayed, s2, pool,
                                  SchedulePolicy::Overlapped);
        EXPECT_EQ(seq.out.features.maxAbsDiff(ovl.out.features), 0.0f)
            << neighbor::backendName(backend);
        EXPECT_TRUE(sameEntries(seq.nit, ovl.nit));
    }
}

NetworkConfig
tinyNetwork()
{
    NetworkConfig cfg;
    cfg.name = "tiny";
    cfg.task = Task::Classification;
    cfg.numInputPoints = 256;
    cfg.numClasses = 10;
    ModuleConfig sa1;
    sa1.name = "sa1";
    sa1.numCentroids = 128;
    sa1.k = 16;
    sa1.search = SearchKind::Ball;
    sa1.radius = 0.25f;
    sa1.mlpWidths = {16, 32};
    cfg.modules.push_back(sa1);
    ModuleConfig sa2;
    sa2.name = "sa2";
    sa2.numCentroids = 32;
    sa2.k = 8;
    sa2.search = SearchKind::Knn;
    sa2.mlpWidths = {32, 64};
    cfg.modules.push_back(sa2);
    ModuleConfig global;
    global.name = "global";
    global.search = SearchKind::Global;
    global.mlpWidths = {64};
    cfg.modules.push_back(global);
    cfg.headWidths = {32};
    return cfg;
}

TEST(AsyncDeterminism, NetworkBitwiseIdenticalAcrossPipelinesAndBackends)
{
    ThreadPool pool(4);
    geom::ModelNetSim sim(40, 256);
    geom::PointCloud cloud = sim.sample().cloud;
    for (neighbor::Backend backend :
         {neighbor::Backend::BruteForce, neighbor::Backend::Grid,
          neighbor::Backend::KdTree}) {
        NetworkConfig cfg = tinyNetwork();
        cfg.backend = backend;
        NetworkExecutor exec(cfg, /*weightSeed=*/1);
        for (PipelineKind kind :
             {PipelineKind::Original, PipelineKind::Delayed,
              PipelineKind::LtdDelayed}) {
            SCOPED_TRACE(std::string(pipelineName(kind)) + "/" +
                         neighbor::backendName(backend));
            RunResult seq = exec.run(cloud, kind, 7, pool,
                                     SchedulePolicy::Sequential);
            for (int rep = 0; rep < 2; ++rep) {
                RunResult ovl = exec.run(cloud, kind, 7, pool,
                                         SchedulePolicy::Overlapped);
                EXPECT_EQ(seq.logits.maxAbsDiff(ovl.logits), 0.0f)
                    << "rep " << rep;
                ASSERT_EQ(seq.nits.size(), ovl.nits.size());
                for (size_t i = 0; i < seq.nits.size(); ++i)
                    EXPECT_TRUE(sameEntries(seq.nits[i], ovl.nits[i]));
            }
        }
    }
}

TEST(AsyncDeterminism, NetworkTimelineCoversEveryModule)
{
    ThreadPool pool(4);
    geom::ModelNetSim sim(41, 256);
    NetworkExecutor exec(tinyNetwork(), 1);
    RunResult r = exec.run(sim.sample().cloud, PipelineKind::Delayed, 7,
                           pool, SchedulePolicy::Overlapped);
    for (const char *group : {"sa1", "sa2", "global", "head"}) {
        StageTimeline mt = r.timeline.group(group);
        EXPECT_FALSE(mt.stages.empty()) << group;
    }
    // Delayed N-A-F modules expose a measured N ‖ F overlap summary.
    hwsim::MeasuredTimeline m =
        hwsim::summarizeMeasured(r.timeline.group("sa1"));
    EXPECT_GT(m.phases.searchMs, 0.0);
    EXPECT_GT(m.phases.featureMs, 0.0);
    EXPECT_GE(m.searchFeatureOverlapFraction, 0.0);
    EXPECT_LE(m.searchFeatureOverlapFraction, 1.0);
}

TEST(AsyncDeterminism, BatchGraphMatchesSequentialBitwise)
{
    // The batch runner folds every cloud's graph into one schedule; the
    // combined schedule must still be bitwise faithful per cloud.
    NetworkExecutor exec(tinyNetwork(), 1);
    geom::ModelNetSim sim(42, 256);
    std::vector<geom::PointCloud> clouds;
    for (int i = 0; i < 4; ++i)
        clouds.push_back(sim.sample().cloud);

    BatchRunner sequential(exec, /*numThreads=*/1);
    BatchRunner overlapped(exec, /*numThreads=*/4);
    BatchResult a = sequential.run(clouds, PipelineKind::Delayed, 7);
    for (int rep = 0; rep < 2; ++rep) {
        BatchResult b = overlapped.run(clouds, PipelineKind::Delayed, 7);
        ASSERT_EQ(a.items.size(), b.items.size());
        for (size_t i = 0; i < a.items.size(); ++i) {
            EXPECT_EQ(a.items[i].run.logits.maxAbsDiff(
                          b.items[i].run.logits),
                      0.0f)
                << "cloud " << i << " rep " << rep;
            EXPECT_GT(b.items[i].latencyMs, 0.0);
            EXPECT_FALSE(b.items[i].run.timeline.stages.empty());
        }
    }
}

} // namespace
} // namespace mesorasi::core
