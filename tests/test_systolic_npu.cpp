/**
 * @file
 * Tests for the systolic-array and NPU cost models.
 */
#include <gtest/gtest.h>

#include "common/check.hpp"

#include "core/trace.hpp"
#include "hwsim/npu.hpp"
#include "hwsim/systolic.hpp"

namespace mesorasi::hwsim {
namespace {

NpuConfig
npuCfg()
{
    return NpuConfig{};
}

TEST(Systolic, SingleTileCycles)
{
    SystolicArray sa(npuCfg());
    // 16x16 array, one 16x16 weight tile, 100 rows streamed:
    // 1 * (100 + 16 + 16) + 16 cycles.
    SystolicCost c = sa.matmul(100, 16, 16);
    EXPECT_EQ(c.weightTiles, 1);
    EXPECT_EQ(c.cycles, 100 + 32 + 16);
    EXPECT_EQ(c.macs, 100 * 16 * 16);
}

TEST(Systolic, TileCountsRoundUp)
{
    SystolicArray sa(npuCfg());
    SystolicCost c = sa.matmul(10, 17, 33);
    EXPECT_EQ(c.weightTiles, 2 * 3);
}

TEST(Systolic, UtilizationBounded)
{
    SystolicArray sa(npuCfg());
    for (auto [m, k, n] : {std::tuple<int64_t, int64_t, int64_t>{1, 3, 64},
                           {16384, 3, 64},
                           {1024, 256, 256}}) {
        SystolicCost c = sa.matmul(m, k, n);
        EXPECT_GT(c.utilization, 0.0);
        EXPECT_LE(c.utilization, 1.0);
    }
}

TEST(Systolic, BigKNImprovesUtilization)
{
    SystolicArray sa(npuCfg());
    // K=3 wastes 13 of 16 rows; K=256 fills the array.
    double skinny = sa.matmul(10000, 3, 64).utilization;
    double full = sa.matmul(10000, 256, 256).utilization;
    EXPECT_GT(full, 2.0 * skinny);
}

TEST(Systolic, MoreRowsAmortizeFill)
{
    SystolicArray sa(npuCfg());
    double few = sa.matmul(16, 16, 16).utilization;
    double many = sa.matmul(4096, 16, 16).utilization;
    EXPECT_GT(many, few);
}

TEST(Systolic, CyclesToMs)
{
    SystolicArray sa(npuCfg()); // 1 GHz
    EXPECT_DOUBLE_EQ(sa.toMs(1'000'000), 1.0);
}

TEST(Systolic, RejectsDegenerate)
{
    SystolicArray sa(npuCfg());
    EXPECT_THROW(sa.matmul(0, 3, 4), mesorasi::UsageError);
}

TEST(Npu, MatmulCostPositive)
{
    NpuModel npu(npuCfg(), DramConfig{}, EnergyConfig{});
    auto op = core::makeMlpOp(1024, 3, 64, "l0");
    NpuCost c = npu.cost(op);
    EXPECT_GT(c.timeMs, 0.0);
    EXPECT_GT(c.energyMj, 0.0);
    EXPECT_EQ(c.macs, 1024 * 3 * 64);
}

TEST(Npu, SmallActivationsAvoidDram)
{
    NpuModel npu(npuCfg(), DramConfig{}, EnergyConfig{});
    // 1024 x 128 fp32 output = 512 KB, fits the 1.5 MB buffer.
    auto small = core::makeMlpOp(1024, 64, 128, "s");
    NpuCost cs = npu.cost(small);
    EXPECT_EQ(cs.dramBytes, 64 * 128 * 4); // weights only
}

TEST(Npu, LargeActivationsSpillToDram)
{
    NpuModel npu(npuCfg(), DramConfig{}, EnergyConfig{});
    // 16384 x 128 output = 8 MB >> 1.5 MB buffer (the original
    // pipeline's aggregated activations, paper Fig. 10).
    auto big = core::makeMlpOp(16384, 64, 128, "b");
    NpuCost cb = npu.cost(big);
    EXPECT_GT(cb.dramBytes, 8 * 1024 * 1024);
}

TEST(Npu, DramBoundOpsSlowerThanCompute)
{
    NpuModel npu(npuCfg(), DramConfig{}, EnergyConfig{});
    auto big = core::makeMlpOp(65536, 64, 128, "b");
    NpuCost c = npu.cost(big);
    EXPECT_GE(c.timeMs, c.computeMs);
}

TEST(Npu, ReduceCosted)
{
    NpuModel npu(npuCfg(), DramConfig{}, EnergyConfig{});
    auto op = core::makeReduceOp(512, 32, 128, "r");
    NpuCost c = npu.cost(op);
    EXPECT_GT(c.timeMs, 0.0);
    EXPECT_EQ(c.dramBytes, 0);
}

TEST(Npu, RejectsForeignOps)
{
    NpuModel npu(npuCfg(), DramConfig{}, EnergyConfig{});
    auto op = core::makeSearchOp(512, 1024, 32, 3, "n");
    EXPECT_THROW(npu.cost(op), mesorasi::UsageError);
}

TEST(Npu, BiggerArrayIsFaster)
{
    NpuConfig big = npuCfg();
    big.systolicRows = big.systolicCols = 48;
    NpuModel small_npu(npuCfg(), DramConfig{}, EnergyConfig{});
    NpuModel big_npu(big, DramConfig{}, EnergyConfig{});
    auto op = core::makeMlpOp(16384, 128, 256, "l");
    EXPECT_LT(big_npu.cost(op).computeMs, small_npu.cost(op).computeMs);
}

} // namespace
} // namespace mesorasi::hwsim
