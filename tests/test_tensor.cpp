/**
 * @file
 * Tests for the tensor container and its operations.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "tensor/init.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"

namespace mesorasi::tensor {
namespace {

using mesorasi::Rng;

TEST(Tensor, ZeroInitialized)
{
    Tensor t(3, 4);
    EXPECT_EQ(t.rows(), 3);
    EXPECT_EQ(t.cols(), 4);
    EXPECT_EQ(t.numel(), 12);
    EXPECT_EQ(t.bytes(), 48);
    for (int r = 0; r < 3; ++r)
        for (int c = 0; c < 4; ++c)
            EXPECT_FLOAT_EQ(t.at(r, c), 0.0f);
}

TEST(Tensor, ConstructFromData)
{
    Tensor t(2, 2, {1, 2, 3, 4});
    EXPECT_FLOAT_EQ(t(1, 0), 3.0f);
    EXPECT_THROW(Tensor(2, 2, {1, 2, 3}), mesorasi::UsageError);
}

TEST(Tensor, BoundsChecking)
{
    Tensor t(2, 2);
    EXPECT_THROW(t.at(2, 0), mesorasi::InternalError);
    EXPECT_THROW(t.at(0, -1), mesorasi::InternalError);
}

TEST(Tensor, FillAndMaxAbsDiff)
{
    Tensor a(2, 3), b(2, 3);
    a.fill(1.0f);
    b.fill(1.5f);
    EXPECT_FLOAT_EQ(a.maxAbsDiff(b), 0.5f);
    EXPECT_TRUE(a.approxEqual(b, 0.6f));
    EXPECT_FALSE(a.approxEqual(b, 0.4f));
}

TEST(Tensor, ShapeMismatchDetected)
{
    Tensor a(2, 3), b(3, 2);
    EXPECT_THROW(a.maxAbsDiff(b), mesorasi::UsageError);
    EXPECT_FALSE(a.approxEqual(b));
}

TEST(Tensor, FrobeniusNorm)
{
    Tensor t(1, 2, {3, 4});
    EXPECT_FLOAT_EQ(t.frobeniusNorm(), 5.0f);
}

TEST(Ops, MatmulHandComputed)
{
    Tensor a(2, 3, {1, 2, 3, 4, 5, 6});
    Tensor b(3, 2, {7, 8, 9, 10, 11, 12});
    Tensor c = matmul(a, b);
    EXPECT_FLOAT_EQ(c(0, 0), 58.0f);
    EXPECT_FLOAT_EQ(c(0, 1), 64.0f);
    EXPECT_FLOAT_EQ(c(1, 0), 139.0f);
    EXPECT_FLOAT_EQ(c(1, 1), 154.0f);
}

TEST(Ops, MatmulIdentity)
{
    Rng rng(1);
    Tensor a = uniform(rng, 4, 4, -1, 1);
    Tensor c = matmul(a, identity(4));
    EXPECT_TRUE(c.approxEqual(a, 1e-6f));
}

TEST(Ops, MatmulShapeMismatch)
{
    Tensor a(2, 3), b(2, 3);
    EXPECT_THROW(matmul(a, b), mesorasi::UsageError);
}

TEST(Ops, MatmulAssociativity)
{
    Rng rng(2);
    Tensor a = uniform(rng, 3, 4, -1, 1);
    Tensor b = uniform(rng, 4, 5, -1, 1);
    Tensor c = uniform(rng, 5, 2, -1, 1);
    Tensor left = matmul(matmul(a, b), c);
    Tensor right = matmul(a, matmul(b, c));
    EXPECT_TRUE(left.approxEqual(right, 1e-4f));
}

TEST(Ops, BiasBroadcasts)
{
    Tensor x(2, 2, {1, 2, 3, 4});
    Tensor b(1, 2, {10, 20});
    addBiasInPlace(x, b);
    EXPECT_FLOAT_EQ(x(0, 0), 11.0f);
    EXPECT_FLOAT_EQ(x(1, 1), 24.0f);
}

TEST(Ops, ReluClampsNegatives)
{
    Tensor x(1, 4, {-1, 0, 2, -3});
    Tensor y = relu(x);
    EXPECT_FLOAT_EQ(y(0, 0), 0.0f);
    EXPECT_FLOAT_EQ(y(0, 2), 2.0f);
    EXPECT_FLOAT_EQ(y(0, 3), 0.0f);
    // Original untouched by the copying variant.
    EXPECT_FLOAT_EQ(x(0, 0), -1.0f);
}

TEST(Ops, BatchNormAffine)
{
    Tensor x(2, 2, {1, 2, 3, 4});
    Tensor gamma(1, 2, {2, 2});
    Tensor beta(1, 2, {1, 1});
    Tensor mean(1, 2, {2, 3});
    Tensor var(1, 2, {1, 1});
    batchNormInPlace(x, gamma, beta, mean, var, 0.0f);
    EXPECT_NEAR(x(0, 0), 2.0f * (1 - 2) + 1, 1e-4f);
    EXPECT_NEAR(x(1, 1), 2.0f * (4 - 3) + 1, 1e-4f);
}

TEST(Ops, MaxReduceAllRows)
{
    Tensor x(3, 2, {1, 9, 5, 2, 3, 4});
    Tensor m = maxReduceRows(x);
    EXPECT_FLOAT_EQ(m(0, 0), 5.0f);
    EXPECT_FLOAT_EQ(m(0, 1), 9.0f);
}

TEST(Ops, MaxReduceSubset)
{
    Tensor x(3, 2, {1, 9, 5, 2, 3, 4});
    Tensor m = maxReduceRows(x, {0, 2});
    EXPECT_FLOAT_EQ(m(0, 0), 3.0f);
    EXPECT_FLOAT_EQ(m(0, 1), 9.0f);
    EXPECT_THROW(maxReduceRows(x, {}), mesorasi::UsageError);
}

TEST(Ops, ArgmaxReduce)
{
    Tensor x(3, 2, {1, 9, 5, 2, 3, 4});
    auto idx = argmaxReduceRows(x);
    EXPECT_EQ(idx[0], 1);
    EXPECT_EQ(idx[1], 0);
}

TEST(Ops, GatherRows)
{
    Tensor x(3, 2, {1, 2, 3, 4, 5, 6});
    Tensor g = gatherRows(x, {2, 0, 2});
    EXPECT_EQ(g.rows(), 3);
    EXPECT_FLOAT_EQ(g(0, 0), 5.0f);
    EXPECT_FLOAT_EQ(g(1, 1), 2.0f);
    EXPECT_FLOAT_EQ(g(2, 0), 5.0f);
    EXPECT_THROW(gatherRows(x, {3}), mesorasi::UsageError);
}

TEST(Ops, SubtractRow)
{
    Tensor x(2, 2, {1, 2, 3, 4});
    Tensor s(1, 2, {1, 1});
    Tensor y = subtractRow(x, s);
    EXPECT_FLOAT_EQ(y(0, 0), 0.0f);
    EXPECT_FLOAT_EQ(y(1, 1), 3.0f);
}

TEST(Ops, SubtractDistributesOverMax)
{
    // The max-before-subtract identity underlying the delayed pipeline:
    // max_j(p_j - c) == max_j(p_j) - c (per column).
    Rng rng(3);
    Tensor p = uniform(rng, 16, 8, -2, 2);
    Tensor c = uniform(rng, 1, 8, -2, 2);
    Tensor sub_then_max = maxReduceRows(subtractRow(p, c));
    Tensor max_then_sub = subtractRow(maxReduceRows(p), c);
    EXPECT_TRUE(sub_then_max.approxEqual(max_then_sub, 1e-6f));
}

TEST(Ops, ReluCommutesWithMax)
{
    // ReLU is monotone, so max_j relu(x_j) == relu(max_j x_j) -- the
    // identity that makes single-layer delayed EdgeConv exact.
    Rng rng(4);
    Tensor x = uniform(rng, 12, 6, -3, 3);
    Tensor a = maxReduceRows(relu(x));
    Tensor b = relu(maxReduceRows(x));
    EXPECT_TRUE(a.approxEqual(b, 1e-6f));
}

TEST(Ops, ConcatCols)
{
    Tensor a(2, 1, {1, 2});
    Tensor b(2, 2, {3, 4, 5, 6});
    Tensor c = concatCols(a, b);
    EXPECT_EQ(c.cols(), 3);
    EXPECT_FLOAT_EQ(c(1, 2), 6.0f);
    EXPECT_THROW(concatCols(a, Tensor(3, 1)), mesorasi::UsageError);
}

TEST(Ops, ConcatRows)
{
    Tensor a(1, 2, {1, 2});
    Tensor b(2, 2, {3, 4, 5, 6});
    Tensor c = concatRows(a, b);
    EXPECT_EQ(c.rows(), 3);
    EXPECT_FLOAT_EQ(c(2, 1), 6.0f);
    EXPECT_THROW(concatRows(a, Tensor(1, 3)), mesorasi::UsageError);
}

TEST(Ops, SoftmaxRowsSumToOne)
{
    Rng rng(5);
    Tensor x = uniform(rng, 4, 7, -5, 5);
    Tensor y = softmaxRows(x);
    for (int r = 0; r < 4; ++r) {
        float sum = 0;
        for (int c = 0; c < 7; ++c) {
            EXPECT_GT(y(r, c), 0.0f);
            sum += y(r, c);
        }
        EXPECT_NEAR(sum, 1.0f, 1e-5f);
    }
}

TEST(Ops, TransposeRoundTrip)
{
    Rng rng(6);
    Tensor x = uniform(rng, 3, 5, -1, 1);
    EXPECT_TRUE(transpose(transpose(x)).approxEqual(x));
}

TEST(Init, XavierWithinBound)
{
    Rng rng(7);
    Tensor w = xavierUniform(rng, 64, 32);
    float bound = std::sqrt(6.0f / (64 + 32));
    for (int r = 0; r < w.rows(); ++r)
        for (int c = 0; c < w.cols(); ++c)
            EXPECT_LE(std::abs(w(r, c)), bound);
}

TEST(Init, KaimingVariance)
{
    Rng rng(8);
    Tensor w = kaimingNormal(rng, 256, 256);
    double sq = 0;
    for (int r = 0; r < w.rows(); ++r)
        for (int c = 0; c < w.cols(); ++c)
            sq += w(r, c) * w(r, c);
    double var = sq / w.numel();
    EXPECT_NEAR(var, 2.0 / 256, 0.002);
}

TEST(Init, IdentityDiagonal)
{
    Tensor i = identity(3);
    EXPECT_FLOAT_EQ(i(0, 0), 1.0f);
    EXPECT_FLOAT_EQ(i(0, 1), 0.0f);
}

TEST(Init, ConstantFills)
{
    Tensor c = constant(2, 2, 3.5f);
    EXPECT_FLOAT_EQ(c(1, 1), 3.5f);
}

} // namespace
} // namespace mesorasi::tensor
