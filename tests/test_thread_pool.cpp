/**
 * @file
 * Unit tests for ThreadPool::submit(): the waitable-task primitive the
 * stage-graph scheduler is built on. The contract under test: every
 * submitted task runs exactly once, wait() is safe from anywhere
 * (including inside a pool task of the same pool), and exceptions
 * propagate to the waiter.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "common/thread_pool.hpp"

namespace mesorasi {
namespace {

TEST(Submit, RunsTaskAndWaitReturns)
{
    ThreadPool pool(4);
    std::atomic<int> ran{0};
    TaskHandle h = pool.submit([&] { ran.fetch_add(1); });
    ASSERT_TRUE(h.valid());
    h.wait();
    EXPECT_EQ(ran.load(), 1);
    EXPECT_TRUE(h.finished());
}

TEST(Submit, EveryTaskRunsExactlyOnce)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(200);
    for (auto &h : hits)
        h.store(0);
    std::vector<TaskHandle> handles;
    handles.reserve(hits.size());
    for (size_t i = 0; i < hits.size(); ++i)
        handles.push_back(
            pool.submit([&hits, i] { hits[i].fetch_add(1); }));
    for (auto &h : handles)
        h.wait();
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(Submit, PropagatesException)
{
    ThreadPool pool(2);
    TaskHandle h =
        pool.submit([] { MESO_REQUIRE(false, "task failed"); });
    EXPECT_THROW(h.wait(), UsageError);
    // The handle stays waitable; later waits rethrow the same error.
    EXPECT_THROW(h.wait(), UsageError);
    EXPECT_TRUE(h.finished());
}

TEST(Submit, WaitFromInsidePoolTaskDoesNotDeadlock)
{
    // A task that submits a child task and waits on it must not
    // deadlock even when every worker is busy doing exactly that: the
    // waiter runs unclaimed children inline.
    ThreadPool pool(2);
    std::atomic<int> children{0};
    std::vector<TaskHandle> parents;
    for (int i = 0; i < 8; ++i)
        parents.push_back(pool.submit([&] {
            TaskHandle child =
                pool.submit([&] { children.fetch_add(1); });
            child.wait();
        }));
    for (auto &p : parents)
        p.wait();
    EXPECT_EQ(children.load(), 8);
}

TEST(Submit, WorkerlessPoolRunsTaskOnWait)
{
    ThreadPool pool(1); // inline pool: no worker threads
    bool ran = false;
    TaskHandle h = pool.submit([&] { ran = true; });
    EXPECT_FALSE(h.finished());
    h.wait();
    EXPECT_TRUE(ran);
    EXPECT_TRUE(h.finished());
}

TEST(Submit, TaskCountsAsInsideWorkerWhereverItRuns)
{
    // Nested parallelFor must inline inside a submitted task exactly as
    // it does inside a parallelFor chunk, or determinism guarantees
    // would depend on which thread claimed the task.
    for (int32_t threads : {1, 4}) {
        ThreadPool pool(threads);
        bool inside = false;
        TaskHandle h =
            pool.submit([&] { inside = ThreadPool::insideWorker(); });
        h.wait();
        EXPECT_TRUE(inside) << threads << " threads";
    }
}

TEST(Submit, DroppedHandleStillExecutes)
{
    ThreadPool pool(2);
    std::mutex m;
    std::condition_variable cv;
    bool ran = false;
    pool.submit([&] {
        std::lock_guard<std::mutex> lock(m);
        ran = true;
        cv.notify_all();
    }); // handle discarded: the queue still owns the task
    std::unique_lock<std::mutex> lock(m);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(10),
                            [&] { return ran; }));
}

TEST(ParallelFor, CountsSuppressedExceptionsBeyondTheFirst)
{
    // When several chunks of one parallelFor throw, exactly one
    // exception reaches the caller; the rest must be accounted for —
    // not silently dropped (they were, before the counter existed).
    ThreadPool pool(4);
    ASSERT_EQ(pool.suppressedExceptionCount(), 0u);

    std::atomic<int> started{0};
    int64_t n = static_cast<int64_t>(pool.size()) * 4;
    try {
        pool.parallelFor(n, /*grain=*/1, [&](int64_t, int64_t) {
            started.fetch_add(1);
            throw UsageError("chunk failure");
        });
        FAIL() << "parallelFor swallowed every exception";
    } catch (const UsageError &) {
    }
    // Every chunk that ran threw; all but the rethrown first are
    // suppressed-and-counted. At least one chunk ran.
    EXPECT_EQ(pool.suppressedExceptionCount(),
              static_cast<uint64_t>(started.load()) - 1);

    // A clean loop afterwards leaves the count untouched.
    std::atomic<int64_t> sum{0};
    pool.parallelFor(n, /*grain=*/1, [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i)
            sum.fetch_add(i);
    });
    EXPECT_EQ(sum.load(), n * (n - 1) / 2);
    EXPECT_EQ(pool.suppressedExceptionCount(),
              static_cast<uint64_t>(started.load()) - 1);
}

TEST(Submit, EmptyHandleRejectsWait)
{
    TaskHandle h;
    EXPECT_FALSE(h.valid());
    EXPECT_FALSE(h.finished());
    EXPECT_THROW(h.wait(), UsageError);
}

} // namespace
} // namespace mesorasi
