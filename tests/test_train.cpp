/**
 * @file
 * Tests for the trainer: gradient checks against finite differences,
 * loss decrease, and above-chance accuracy under both pipelines.
 */
#include <gtest/gtest.h>

#include "common/check.hpp"

#include <cmath>

#include "common/rng.hpp"
#include "tensor/init.hpp"
#include "tensor/ops.hpp"
#include "train/grad_ops.hpp"
#include "train/mini_net.hpp"

namespace mesorasi::train {
namespace {

using mesorasi::Rng;
using tensor::Tensor;

TEST(GradOps, MatmulBackwardFiniteDifference)
{
    Rng rng(1);
    Tensor a = tensor::uniform(rng, 3, 4, -1, 1);
    Tensor b = tensor::uniform(rng, 4, 2, -1, 1);
    // Loss = sum(A*B); dC = ones.
    Tensor dC(3, 2);
    dC.fill(1.0f);
    Tensor dA, dB;
    matmulBackward(a, b, dC, dA, dB);

    float eps = 1e-3f;
    auto loss = [&](const Tensor &aa, const Tensor &bb) {
        Tensor c = tensor::matmul(aa, bb);
        float s = 0;
        for (int r = 0; r < c.rows(); ++r)
            for (int cc = 0; cc < c.cols(); ++cc)
                s += c(r, cc);
        return s;
    };
    for (int r = 0; r < 3; ++r) {
        for (int c = 0; c < 4; ++c) {
            Tensor ap = a;
            ap(r, c) += eps;
            Tensor am = a;
            am(r, c) -= eps;
            float num = (loss(ap, b) - loss(am, b)) / (2 * eps);
            EXPECT_NEAR(dA(r, c), num, 1e-2f);
        }
    }
    for (int r = 0; r < 4; ++r) {
        for (int c = 0; c < 2; ++c) {
            Tensor bp = b;
            bp(r, c) += eps;
            Tensor bm = b;
            bm(r, c) -= eps;
            float num = (loss(a, bp) - loss(a, bm)) / (2 * eps);
            EXPECT_NEAR(dB(r, c), num, 1e-2f);
        }
    }
}

TEST(GradOps, ReluBackwardMasks)
{
    Tensor y(1, 3, {0.0f, 2.0f, 0.0f});
    Tensor dY(1, 3, {5.0f, 5.0f, 5.0f});
    Tensor dX = reluBackward(y, dY);
    EXPECT_FLOAT_EQ(dX(0, 0), 0.0f);
    EXPECT_FLOAT_EQ(dX(0, 1), 5.0f);
    EXPECT_FLOAT_EQ(dX(0, 2), 0.0f);
}

TEST(GradOps, BiasBackwardSumsColumns)
{
    Tensor dY(2, 2, {1, 2, 3, 4});
    Tensor dB = biasBackward(dY);
    EXPECT_FLOAT_EQ(dB(0, 0), 4.0f);
    EXPECT_FLOAT_EQ(dB(0, 1), 6.0f);
}

TEST(GradOps, GroupMaxBackwardRoutesToArgmax)
{
    // Two groups of two rows.
    Tensor x(4, 1, {1, 5, 7, 2});
    Tensor dY(2, 1, {10, 20});
    Tensor dX = groupMaxBackward(x, 2, 2, dY);
    EXPECT_FLOAT_EQ(dX(0, 0), 0.0f);
    EXPECT_FLOAT_EQ(dX(1, 0), 10.0f); // argmax of group 0
    EXPECT_FLOAT_EQ(dX(2, 0), 20.0f); // argmax of group 1
    EXPECT_FLOAT_EQ(dX(3, 0), 0.0f);
}

TEST(GradOps, GatherBackwardScatterAdds)
{
    Tensor dG(3, 1, {1, 2, 4});
    Tensor dX = gatherBackward({0, 2, 0}, dG, 4);
    EXPECT_FLOAT_EQ(dX(0, 0), 5.0f); // 1 + 4
    EXPECT_FLOAT_EQ(dX(2, 0), 2.0f);
    EXPECT_FLOAT_EQ(dX(1, 0), 0.0f);
}

TEST(GradOps, SoftmaxCrossEntropyGradient)
{
    Tensor logits(1, 3, {1.0f, 2.0f, 0.5f});
    Tensor dl;
    double loss = softmaxCrossEntropy(logits, {1}, dl);
    EXPECT_GT(loss, 0.0);
    // Gradient sums to zero and is negative at the true class.
    float sum = dl(0, 0) + dl(0, 1) + dl(0, 2);
    EXPECT_NEAR(sum, 0.0f, 1e-5f);
    EXPECT_LT(dl(0, 1), 0.0f);
}

TEST(GradOps, SoftmaxCrossEntropyFiniteDifference)
{
    Rng rng(3);
    Tensor logits = tensor::uniform(rng, 1, 5, -1, 1);
    Tensor dl;
    softmaxCrossEntropy(logits, {2}, dl);
    float eps = 1e-3f;
    for (int c = 0; c < 5; ++c) {
        Tensor lp = logits;
        lp(0, c) += eps;
        Tensor lm = logits;
        lm(0, c) -= eps;
        Tensor tmp;
        double up = softmaxCrossEntropy(lp, {2}, tmp);
        double dn = softmaxCrossEntropy(lm, {2}, tmp);
        EXPECT_NEAR(dl(0, c), (up - dn) / (2 * eps), 1e-3f);
    }
}

TEST(GradOps, AccuracyCounts)
{
    Tensor logits(2, 2, {3, 1, 0, 9});
    EXPECT_DOUBLE_EQ(accuracy(logits, {0, 1}), 1.0);
    EXPECT_DOUBLE_EQ(accuracy(logits, {1, 1}), 0.5);
}

TEST(GradOps, SgdStepMovesAgainstGradient)
{
    Tensor w(1, 1, {1.0f});
    Tensor g(1, 1, {2.0f});
    sgdStep(w, g, 0.1f, 0.0f);
    EXPECT_FLOAT_EQ(w(0, 0), 0.8f);
}

TEST(MiniNet, LossDecreasesOriginal)
{
    MiniNetConfig cfg;
    cfg.numPoints = 128;
    cfg.numCentroids = 24;
    cfg.k = 6;
    cfg.numClasses = 4;
    auto data = makeShapeDataset(1, 4, 8, cfg.numPoints);
    MiniPointNet net(cfg, core::PipelineKind::Original, 2);
    Rng rng(3);
    double first = net.trainEpoch(data, rng);
    double last = first;
    for (int e = 0; e < 6; ++e)
        last = net.trainEpoch(data, rng);
    EXPECT_LT(last, first);
}

TEST(MiniNet, LossDecreasesDelayed)
{
    MiniNetConfig cfg;
    cfg.numPoints = 128;
    cfg.numCentroids = 24;
    cfg.k = 6;
    cfg.numClasses = 4;
    auto data = makeShapeDataset(4, 4, 8, cfg.numPoints);
    MiniPointNet net(cfg, core::PipelineKind::Delayed, 5);
    Rng rng(6);
    double first = net.trainEpoch(data, rng);
    double last = first;
    for (int e = 0; e < 6; ++e)
        last = net.trainEpoch(data, rng);
    EXPECT_LT(last, first);
}

TEST(MiniNet, TrainedBeatsChanceBothPipelines)
{
    MiniNetConfig cfg;
    cfg.numPoints = 128;
    cfg.numCentroids = 24;
    cfg.k = 6;
    cfg.numClasses = 4;
    auto train_set = makeShapeDataset(7, 4, 12, cfg.numPoints);
    auto test_set = makeShapeDataset(8, 4, 6, cfg.numPoints);

    for (auto kind :
         {core::PipelineKind::Original, core::PipelineKind::Delayed}) {
        MiniPointNet net(cfg, kind, 9);
        Rng rng(10);
        for (int e = 0; e < 25; ++e)
            net.trainEpoch(train_set, rng);
        double acc = net.evaluate(test_set);
        EXPECT_GT(acc, 0.4) << "pipeline "
                            << core::pipelineName(kind)
                            << " (chance = 0.25)";
    }
}

TEST(MiniNet, ForwardDeterministic)
{
    MiniNetConfig cfg;
    cfg.numPoints = 64;
    cfg.numCentroids = 8;
    cfg.k = 4;
    auto data = makeShapeDataset(11, 2, 1, cfg.numPoints);
    MiniPointNet net(cfg, core::PipelineKind::Delayed, 12);
    Tensor a = net.forward(data[0].cloud);
    Tensor b = net.forward(data[0].cloud);
    EXPECT_TRUE(a.approxEqual(b, 0.0f));
}

TEST(MiniNet, RejectsWrongPointCount)
{
    MiniNetConfig cfg;
    cfg.numPoints = 64;
    auto data = makeShapeDataset(13, 2, 1, 32);
    MiniPointNet net(cfg, core::PipelineKind::Original, 14);
    EXPECT_THROW(net.forward(data[0].cloud), mesorasi::UsageError);
}

} // namespace
} // namespace mesorasi::train
