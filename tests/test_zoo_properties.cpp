/**
 * @file
 * Cross-network property sweeps: invariants that must hold for every
 * network in the zoo, under every pipeline — trace consistency, NIT
 * validity, shape chaining, and simulator orderings.
 */
#include <gtest/gtest.h>

#include "common/check.hpp"

#include <set>

#include "core/analysis.hpp"
#include "core/networks.hpp"
#include "geom/datasets.hpp"
#include "hwsim/soc.hpp"

namespace mesorasi::core {
namespace {

geom::PointCloud
inputFor(const NetworkConfig &cfg, uint64_t seed = 3)
{
    if (cfg.task == Task::Segmentation) {
        geom::ShapeNetSim sim(seed, cfg.numInputPoints);
        return sim.sample(1).cloud;
    }
    geom::ModelNetSim sim(seed, cfg.numInputPoints);
    return sim.sample(1).cloud;
}

class ZooSweep : public ::testing::TestWithParam<int>
{
  protected:
    NetworkConfig cfg_ = zoo::allNetworks()[GetParam()];
};

std::string
zooName(const ::testing::TestParamInfo<int> &info)
{
    static const char *names[] = {"PnppC", "PnppS", "DgcnnC", "DgcnnS",
                                  "FPointNet", "Ldgcnn", "DensePoint"};
    return names[info.param];
}

TEST_P(ZooSweep, NitIndicesWithinModuleInputs)
{
    NetworkExecutor exec(cfg_, 1);
    RunResult r = exec.run(inputFor(cfg_), PipelineKind::Delayed, 5);
    ASSERT_EQ(r.nits.size(), r.ios.size());
    for (size_t i = 0; i < r.nits.size(); ++i) {
        EXPECT_LT(r.nits[i].maxReferencedIndex(), r.ios[i].nIn)
            << cfg_.name << " module " << i;
        EXPECT_EQ(r.nits[i].size(), r.ios[i].nOut) << cfg_.name;
    }
}

TEST_P(ZooSweep, TraceMacsMatchBetweenRunAndAnalytic)
{
    NetworkExecutor exec(cfg_, 1);
    for (auto kind : {PipelineKind::Original, PipelineKind::Delayed}) {
        RunResult r = exec.run(inputFor(cfg_), kind, 5);
        NetworkTrace analytic =
            exec.analyticTrace(kind, cfg_.numInputPoints);
        EXPECT_EQ(r.trace.macs(Phase::Feature),
                  analytic.macs(Phase::Feature))
            << cfg_.name << " " << pipelineName(kind);
        EXPECT_EQ(r.trace.macs(Phase::Search),
                  analytic.macs(Phase::Search))
            << cfg_.name << " " << pipelineName(kind);
    }
}

TEST_P(ZooSweep, DelayedNeverIncreasesFeatureMacs)
{
    NetworkExecutor exec(cfg_, 1);
    auto orig = exec.analyticTrace(PipelineKind::Original,
                                   cfg_.numInputPoints);
    auto del = exec.analyticTrace(PipelineKind::Delayed,
                                  cfg_.numInputPoints);
    auto ltd = exec.analyticTrace(PipelineKind::LtdDelayed,
                                  cfg_.numInputPoints);
    EXPECT_LE(del.macs(Phase::Feature), orig.macs(Phase::Feature))
        << cfg_.name;
    // Ltd hoists only the first layer, so it sits between the two.
    EXPECT_LE(del.macs(Phase::Feature), ltd.macs(Phase::Feature))
        << cfg_.name;
    EXPECT_LE(ltd.macs(Phase::Feature), orig.macs(Phase::Feature))
        << cfg_.name;
}

TEST_P(ZooSweep, SearchCostIdenticalAcrossPipelines)
{
    NetworkExecutor exec(cfg_, 1);
    auto orig = exec.analyticTrace(PipelineKind::Original,
                                   cfg_.numInputPoints);
    auto del = exec.analyticTrace(PipelineKind::Delayed,
                                  cfg_.numInputPoints);
    EXPECT_EQ(orig.macs(Phase::Search), del.macs(Phase::Search))
        << cfg_.name << ": delayed-aggregation must not change N";
}

TEST_P(ZooSweep, DelayedAggregationMovesToOutputSpace)
{
    NetworkExecutor exec(cfg_, 1);
    auto orig = exec.analyticTrace(PipelineKind::Original,
                                   cfg_.numInputPoints);
    auto del = exec.analyticTrace(PipelineKind::Delayed,
                                  cfg_.numInputPoints);
    // Wherever the network has non-global aggregating modules, the
    // delayed pipeline gathers wider rows.
    int64_t orig_bytes = 0, del_bytes = 0;
    for (const auto &m : orig.modules)
        orig_bytes += m.bytes(Phase::Aggregation);
    for (const auto &m : del.modules)
        del_bytes += m.bytes(Phase::Aggregation);
    if (cfg_.linkedInputs) {
        // Linked-input networks concatenate previous outputs, so the
        // *input* features the original pipeline gathers can be wider
        // than the module outputs the delayed pipeline gathers — the
        // growth argument only holds for Mout > Min modules.
        EXPECT_GT(del_bytes, 0) << cfg_.name;
    } else {
        EXPECT_GT(del_bytes, orig_bytes) << cfg_.name;
    }
}

TEST_P(ZooSweep, ModuleIoChainsDimensions)
{
    NetworkExecutor exec(cfg_, 1);
    RunResult r = exec.run(inputFor(cfg_), PipelineKind::Delayed, 5);
    // Point counts never grow along the encoder.
    int32_t prev = cfg_.numInputPoints;
    for (size_t i = 0; i < r.ios.size(); ++i) {
        if (r.ios[i].nIn == prev) // encoder chain (stage2 restarts)
            EXPECT_LE(r.ios[i].nOut, r.ios[i].nIn) << cfg_.name;
        prev = r.ios[i].nOut;
    }
}

TEST_P(ZooSweep, OccupancyCoversNeighborBudget)
{
    NetworkExecutor exec(cfg_, 1);
    RunResult r = exec.run(inputFor(cfg_), PipelineKind::Delayed, 5);
    // Total occupancy mass equals the number of points that occur in
    // at least one neighborhood, and the weighted sum equals the total
    // neighbor slots.
    for (const auto &nit : r.nits) {
        Histogram h = neighborhoodOccupancy({nit});
        int64_t weighted = 0;
        for (const auto &[occ, cnt] : h.entries())
            weighted += occ * static_cast<int64_t>(cnt);
        EXPECT_EQ(weighted, nit.totalNeighbors());
    }
}

TEST_P(ZooSweep, SocOrderingsHold)
{
    NetworkExecutor exec(cfg_, 1);
    geom::PointCloud cloud = inputFor(cfg_);
    RunResult orig = exec.run(cloud, PipelineKind::Original, 5);
    RunResult del = exec.run(cloud, PipelineKind::Delayed, 5);

    hwsim::Soc soc(hwsim::SocConfig::defaultTx2());
    auto gpu = soc.simulate(orig, hwsim::Mapping::gpuOnly());
    auto base = soc.simulate(orig, hwsim::Mapping::baselineGpuNpu());
    auto sw = soc.simulate(del, hwsim::Mapping::mesorasiSw());
    auto hw = soc.simulate(del, hwsim::Mapping::mesorasiHw());
    auto nse = soc.simulate(del, hwsim::Mapping::mesorasiHw().withNse());

    // The paper's headline orderings must hold for every network.
    EXPECT_LT(base.totalMs, gpu.totalMs) << cfg_.name;
    EXPECT_LE(sw.totalMs, base.totalMs * 1.001) << cfg_.name;
    EXPECT_LE(hw.totalMs, sw.totalMs * 1.001) << cfg_.name;
    EXPECT_LE(nse.totalMs, hw.totalMs * 1.001) << cfg_.name;
    // The AU never *increases* aggregation time.
    EXPECT_LE(hw.phases.aggregationMs, sw.phases.aggregationMs * 1.001)
        << cfg_.name;
    // Energy: the HW design wins against the baseline.
    EXPECT_LT(hw.totalEnergyMj(), base.totalEnergyMj()) << cfg_.name;
}

TEST_P(ZooSweep, PackedNitFitsTwelveBitIndices)
{
    // The AU's NIT entries use 12-bit indices (Sec. VI): every module's
    // input point count must stay under 4096 for the packing to be
    // valid at the evaluated scales.
    NetworkExecutor exec(cfg_, 1);
    auto ios = exec.analyticIos(cfg_.numInputPoints);
    for (const auto &io : ios)
        EXPECT_LE(io.nIn, 4096) << cfg_.name << " " << io.name;
}

INSTANTIATE_TEST_SUITE_P(AllNetworks, ZooSweep, ::testing::Range(0, 7),
                         zooName);

} // namespace
} // namespace mesorasi::core
